"""Benchmark run-store platform: performance as a tracked artifact.

The ``BENCH_*.json`` snapshots gate point-in-time numbers against fixed
thresholds; this package is what keeps those gates honest over time.
Every gated bench invocation is appended as a schema'd
:class:`~repro.bench.platform.store.RunRecord` (git hash, machine
fingerprint, config + seed, per-repeat samples, exact work counters)
to a JSON-lines history; the lazily-computed
:class:`~repro.bench.platform.report.ExperimentReport` serves time
series, pairwise comparisons, and the Mann-Whitney/bootstrap
regression gate against the *promoted baseline*
(:class:`~repro.bench.platform.baseline.BaselineRegistry`).

See ``docs/benchmarking.md`` for the workflow.
"""

from repro.bench.platform.adapter import (
    add_store_args,
    build_record,
    default_store_root,
    registry_totals,
    store_and_check,
)
from repro.bench.platform.baseline import BaselineRegistry
from repro.bench.platform.report import BenchComparison, ExperimentReport
from repro.bench.platform.stat_tests import (
    MIN_SAMPLES,
    MannWhitneyResult,
    RegressionVerdict,
    a12,
    bootstrap_median_ratio_ci,
    detect_regression,
    mann_whitney_u,
    rankdata,
)
from repro.bench.platform.store import (
    SCHEMA_VERSION,
    RunRecord,
    RunStore,
    git_revision,
    machine_fingerprint,
    new_run_id,
)

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "RunStore",
    "machine_fingerprint",
    "git_revision",
    "new_run_id",
    "BaselineRegistry",
    "ExperimentReport",
    "BenchComparison",
    "MannWhitneyResult",
    "RegressionVerdict",
    "MIN_SAMPLES",
    "rankdata",
    "mann_whitney_u",
    "a12",
    "bootstrap_median_ratio_ci",
    "detect_regression",
    "add_store_args",
    "build_record",
    "default_store_root",
    "registry_totals",
    "store_and_check",
]
