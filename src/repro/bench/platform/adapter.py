"""The shared harness adapter between ``benchmarks/bench_*.py`` and
the run-store platform.

Every gated bench keeps its legacy behavior — print the table, write
the ``BENCH_*.json`` artifact, enforce its fixed-threshold gate as a
*hard floor* — and then calls :func:`store_and_check`, which:

1. appends a :class:`~repro.bench.platform.store.RunRecord` built from
   the legacy payload (config + seed, per-repeat samples, exact work
   counters from the :class:`~repro.obs.MetricsRegistry`, gate
   verdict) to the JSON-lines history, and
2. runs the statistical regression gate against the promoted stored
   baseline (:meth:`ExperimentReport.regressions`), printing the
   verdicts and returning a nonzero exit contribution on a *confirmed*
   regression (same machine, all three statistical checks agreeing).

So "the gate" for each bench is now: legacy hard floor AND
stored-baseline statistics — magic constants survive only as floors.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.bench.platform.baseline import BaselineRegistry
from repro.bench.platform.report import BenchComparison, ExperimentReport
from repro.bench.platform.store import (
    RunRecord,
    RunStore,
    git_revision,
    machine_fingerprint,
    new_run_id,
)

__all__ = [
    "DEFAULT_STORE_ENV",
    "default_store_root",
    "add_store_args",
    "registry_totals",
    "build_record",
    "store_and_check",
]

#: Environment override for where the run history lives.
DEFAULT_STORE_ENV = "REPRO_BENCH_STORE"


def default_store_root() -> Path:
    """``$REPRO_BENCH_STORE`` or ``benchmarks/runs`` (repo layout)."""
    env = os.environ.get(DEFAULT_STORE_ENV)
    if env:
        return Path(env)
    # The benches run from the repo root (CI does; so does `make`).
    # When invoked elsewhere, fall back to the checkout that holds this
    # file so records land in one history, not scattered cwd-relative.
    cwd_runs = Path("benchmarks") / "runs"
    if cwd_runs.parent.is_dir():
        return cwd_runs
    repo_root = Path(__file__).resolve().parents[4]
    return repo_root / "benchmarks" / "runs"


def add_store_args(ap: argparse.ArgumentParser) -> None:
    """The store/stat-gate flags every gated bench shares."""
    grp = ap.add_argument_group("run store (see docs/benchmarking.md)")
    grp.add_argument("--store-dir", default=None, metavar="DIR",
                     help="run-store directory (default: benchmarks/runs, "
                          f"or ${DEFAULT_STORE_ENV})")
    grp.add_argument("--no-store", action="store_true",
                     help="skip appending this invocation to the run store")
    grp.add_argument("--no-stat-gate", action="store_true",
                     help="record, but do not fail on a statistical "
                          "regression vs the stored baseline")


def registry_totals(registry) -> dict[str, float]:
    """Flatten a :class:`~repro.obs.MetricsRegistry` into the exact
    per-name counter totals a record stores (labels summed out)."""
    totals: dict[str, float] = {}
    for entry in registry.as_dict().get("counters", []):
        name = entry["name"]
        totals[name] = totals.get(name, 0) + entry["value"]
    return {k: v for k, v in sorted(totals.items())}


def build_record(
    bench: str,
    payload: dict,
    samples: dict[str, list[float]],
    *,
    seed: int,
    registry=None,
    extra_config: dict | None = None,
) -> RunRecord:
    """A store record from a legacy bench payload.

    The legacy JSON artifact is left untouched (deprecation contract:
    its structure stays consumable for one cycle); the record carries
    the same config plus the seed, the raw per-repeat samples, and the
    exact work counters.
    """
    config = dict(payload.get("config", {}))
    if extra_config:
        config.update(extra_config)
    config.setdefault("seed", seed)
    return RunRecord(
        bench=bench,
        run_id=new_run_id(bench),
        timestamp=time.time(),
        config=config,
        samples={k: [float(x) for x in v] for k, v in samples.items()},
        metrics=registry_totals(registry) if registry is not None else {},
        gate=payload.get("gate"),
        git_hash=git_revision(),
        machine=machine_fingerprint(),
    )


def store_and_check(
    bench: str,
    payload: dict,
    samples: dict[str, list[float]],
    *,
    seed: int,
    args: argparse.Namespace | None = None,
    store_dir: str | os.PathLike[str] | None = None,
    no_store: bool = False,
    stat_gate: bool = True,
    registry=None,
    extra_config: dict | None = None,
    alpha: float = 0.05,
    min_effect: float = 1.10,
    window: int = 3,
    out=sys.stdout,
) -> tuple[RunRecord | None, BenchComparison | None, int]:
    """Append this invocation to the history and gate it statistically.

    Returns ``(record, comparison, exit_code)`` where ``exit_code`` is
    1 only on a *confirmed* regression with the gate enabled.  ``args``
    (from :func:`add_store_args`) overrides the keyword defaults.
    """
    if args is not None:
        store_dir = getattr(args, "store_dir", None) or store_dir
        no_store = no_store or getattr(args, "no_store", False)
        if getattr(args, "no_stat_gate", False):
            stat_gate = False
    if no_store:
        return None, None, 0

    store = RunStore(store_dir or default_store_root())
    record = build_record(
        bench, payload, samples, seed=seed, registry=registry,
        extra_config=extra_config,
    )
    path = store.append(record)
    print(f"run store: appended {record.run_id} to {path}", file=out)

    report = ExperimentReport(
        store, baselines=BaselineRegistry.for_store(store),
        alpha=alpha, min_effect=min_effect, window=window,
    )
    comparison = report.regressions(bench)
    for line in comparison.describe_lines():
        print(line, file=out)
    if comparison.regressed and stat_gate:
        print(f"FAIL: {bench} statistically slower than stored baseline "
              f"{comparison.baseline_id}", file=sys.stderr)
        return record, comparison, 1
    return record, comparison, 0
