"""``repro bench`` — run-store verbs for the benchmark platform.

Verbs
-----
``bench run <name...|all>``      run gated benches (optionally N times),
                                 each invocation appending to the store
``bench compare``                statistical gate vs promoted baselines
``bench baseline promote``       make a stored run the new baseline
``bench baseline show``          print the promoted baselines
``bench history <bench>``        per-metric median time series

Examples::

    python -m repro bench run all --smoke --repeat 3
    python -m repro bench compare --strict
    python -m repro bench baseline promote kernels
    python -m repro bench history kernels --metric wordarray.pivot_select
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import sys
import time
from pathlib import Path

from repro.bench.platform.adapter import default_store_root
from repro.bench.platform.baseline import BaselineRegistry
from repro.bench.platform.report import ExperimentReport
from repro.bench.platform.store import RunStore

__all__ = ["add_bench_parser", "cmd_bench", "GATED_BENCHES"]

#: The benches migrated onto the run store (``bench run all``).
GATED_BENCHES = ("kernels", "forest", "obs", "parallel", "shard", "dynamic")

#: Environment override for where the ``bench_*.py`` scripts live.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def add_bench_parser(sub) -> None:
    """Attach the ``bench`` subcommand to the main CLI's subparsers."""
    p = sub.add_parser(
        "bench",
        help="benchmark run store: run, compare, promote baselines",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="run-store directory (default: benchmarks/runs)")
    verbs = p.add_subparsers(dest="bench_verb", required=True)

    p_run = verbs.add_parser("run", help="run gated benches, record runs")
    p_run.add_argument("names", nargs="+",
                       help=f"bench names ({', '.join(GATED_BENCHES)}) "
                            f"or 'all'")
    p_run.add_argument("--smoke", action="store_true",
                       help="pass --smoke through to each bench")
    p_run.add_argument("--seed", type=int, default=None,
                       help="explicit RNG seed passed to every bench")
    p_run.add_argument("--repeat", type=int, default=1, metavar="N",
                       help="invoke each bench N times (more stored "
                            "samples -> more statistical power)")
    p_run.add_argument("--bench-dir", default=None, metavar="DIR",
                       help="directory holding bench_*.py (default: "
                            f"./benchmarks, or ${BENCH_DIR_ENV})")
    p_run.add_argument("--no-stat-gate", action="store_true",
                       help="record runs but never fail on statistics")

    p_cmp = verbs.add_parser(
        "compare", help="statistical gate vs the promoted baselines")
    p_cmp.add_argument("--bench", action="append", default=None,
                       help="restrict to these benches (repeatable)")
    p_cmp.add_argument("--alpha", type=float, default=0.05,
                       help="Mann-Whitney significance (default 0.05)")
    p_cmp.add_argument("--min-effect", type=float, default=1.10,
                       help="practical slowdown floor (default 1.10x)")
    p_cmp.add_argument("--window", type=int, default=3,
                       help="pool samples from the newest N runs "
                            "(default 3)")
    p_cmp.add_argument("--strict", action="store_true",
                       help="exit 1 on a confirmed regression")
    p_cmp.add_argument("--ignore-machine", action="store_true",
                       help="treat cross-machine comparisons as "
                            "confirmable (default: advisory only)")

    p_base = verbs.add_parser("baseline", help="manage promoted baselines")
    base_verbs = p_base.add_subparsers(dest="baseline_verb", required=True)
    p_prom = base_verbs.add_parser(
        "promote", help="promote a stored run to baseline")
    p_prom.add_argument("bench",
                        help="bench name, or 'all' for every stored bench")
    p_prom.add_argument("--run-id", default=None,
                        help="run to promote (default: the latest)")
    p_prom.add_argument("--if-missing", action="store_true",
                        help="only promote benches with no baseline yet")
    base_verbs.add_parser("show", help="print the promoted baselines")

    p_hist = verbs.add_parser("history", help="per-metric time series")
    p_hist.add_argument("bench")
    p_hist.add_argument("--metric", action="append", default=None,
                        help="restrict to these metrics (repeatable)")


# ----------------------------------------------------------------------
# bench-script discovery + invocation
# ----------------------------------------------------------------------
def _find_bench_dir(explicit: str | None) -> Path:
    if explicit:
        path = Path(explicit)
    elif os.environ.get(BENCH_DIR_ENV):
        path = Path(os.environ[BENCH_DIR_ENV])
    else:
        cwd_benchmarks = Path("benchmarks")
        if cwd_benchmarks.is_dir():
            path = cwd_benchmarks
        else:
            path = Path(__file__).resolve().parents[4] / "benchmarks"
    if not path.is_dir():
        raise FileNotFoundError(
            f"bench directory {path} not found — pass --bench-dir or set "
            f"${BENCH_DIR_ENV}"
        )
    return path


def _load_bench_main(bench_dir: Path, name: str):
    script = bench_dir / f"bench_{name}.py"
    if not script.exists():
        raise FileNotFoundError(f"no such bench: {script}")
    spec = importlib.util.spec_from_file_location(
        f"repro_bench_script_{name}", script
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "main"):
        raise AttributeError(f"{script} has no main()")
    return module.main


def _cmd_run(args) -> int:
    names = list(args.names)
    if names == ["all"]:
        names = list(GATED_BENCHES)
    bench_dir = _find_bench_dir(args.bench_dir)
    worst = 0
    for name in names:
        main = _load_bench_main(bench_dir, name)
        argv = []
        if args.smoke:
            argv.append("--smoke")
        if args.seed is not None:
            argv.extend(["--seed", str(args.seed)])
        if args.store_dir:
            argv.extend(["--store-dir", args.store_dir])
        if args.no_stat_gate:
            argv.append("--no-stat-gate")
        for i in range(args.repeat):
            print(f"=== bench {name} (invocation {i + 1}/{args.repeat}) ===")
            t0 = time.perf_counter()
            rc = int(main(list(argv)) or 0)
            print(f"=== bench {name} done in "
                  f"{time.perf_counter() - t0:.1f}s (exit {rc}) ===")
            worst = max(worst, rc)
    return worst


# ----------------------------------------------------------------------
# compare / baseline / history
# ----------------------------------------------------------------------
def _store(args) -> RunStore:
    return RunStore(args.store_dir or default_store_root())


def _cmd_compare(args) -> int:
    store = _store(args)
    report = ExperimentReport(
        store, alpha=args.alpha, min_effect=args.min_effect,
        window=args.window,
    )
    benches = args.bench or list(report.benches)
    regressed = []
    for bench in benches:
        cmp_ = report.regressions(bench)
        for line in cmp_.describe_lines():
            print(line)
        confirmed = cmp_.regressed or (
            args.ignore_machine and cmp_.advisory_regressions
            and not cmp_.machine_match
        )
        if confirmed:
            regressed.append(bench)
    if not benches:
        print(f"(run store {store.root} is empty)")
    if regressed:
        print(f"confirmed regressions: {', '.join(regressed)}",
              file=sys.stderr)
        return 1 if args.strict else 0
    print("no confirmed regressions")
    return 0


def _cmd_baseline(args) -> int:
    store = _store(args)
    registry = BaselineRegistry.for_store(store)
    if args.baseline_verb == "show":
        entries = registry.load()
        if not entries:
            print(f"(no promoted baselines in {registry.path})")
            return 0
        for bench, entry in sorted(entries.items()):
            print(f"{bench}: {entry['run_id']} "
                  f"(git {str(entry.get('git_hash'))[:12]}, "
                  f"promoted {entry.get('promoted_at', '-')})")
        return 0

    benches = store.benches() if args.bench == "all" else [args.bench]
    if not benches:
        print("nothing to promote: run store is empty", file=sys.stderr)
        return 2
    for bench in benches:
        if args.if_missing and registry.get(bench) is not None:
            print(f"{bench}: baseline already promoted, skipping")
            continue
        record = (store.get(bench, args.run_id) if args.run_id
                  else store.latest(bench))
        if record is None:
            print(f"{bench}: no stored run "
                  f"{args.run_id or '(empty history)'}", file=sys.stderr)
            return 2
        registry.promote(record)
        print(f"{bench}: promoted {record.run_id} "
              f"(git {str(record.git_hash)[:12]})")
    return 0


def _cmd_history(args) -> int:
    report = ExperimentReport(_store(args))
    metrics = args.metric or list(report.metrics(args.bench))
    if not metrics:
        print(f"(no stored runs for {args.bench!r})", file=sys.stderr)
        return 2
    for metric in metrics:
        series = report.time_series(args.bench, metric)
        if not series:
            continue
        print(f"{args.bench}.{metric}:")
        unit = "" if metric.endswith("_ratio") else "s"
        for run_id, ts, git_hash, median in series:
            stamp = time.strftime("%Y-%m-%d %H:%M", time.gmtime(ts))
            print(f"  {stamp}  {median:12.6g}{unit}  "
                  f"git={str(git_hash)[:10]}  {run_id}")
    return 0


def cmd_bench(args) -> int:
    """Dispatch for the ``bench`` subcommand."""
    try:
        if args.bench_verb == "run":
            return _cmd_run(args)
        if args.bench_verb == "compare":
            return _cmd_compare(args)
        if args.bench_verb == "baseline":
            return _cmd_baseline(args)
        if args.bench_verb == "history":
            return _cmd_history(args)
    except (FileNotFoundError, AttributeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unknown bench verb {args.bench_verb!r}")
