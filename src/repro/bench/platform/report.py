"""Lazily-computed experiment report over the benchmark run history.

Fuzzbench's ``experiment_results.py`` idiom: the report object is a
bag of cached properties/methods over the stored history, so building
one is free — each history file is read **at most once** per report,
and only when something actually asks a question that needs it.

The report answers three kinds of question:

* **time series** — how a metric's median moved across stored runs;
* **pairwise comparison** — run A vs run B, per metric, with the full
  :class:`~repro.bench.platform.stat_tests.RegressionVerdict`;
* **regression gate** — the newest runs vs the *promoted baseline*
  (:mod:`repro.bench.platform.baseline`), pooling samples across the
  trailing window so CI's repeated smoke runs gain statistical power.

Cross-machine honesty: timings from a different machine fingerprint
are never silently comparable.  A comparison whose baseline was
measured elsewhere is reported as *advisory* (``machine_match=False``)
and does not fail the strict gate unless explicitly requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

import numpy as np

from repro.bench.platform.baseline import BaselineRegistry
from repro.bench.platform.stat_tests import RegressionVerdict, detect_regression
from repro.bench.platform.store import RunRecord, RunStore

__all__ = ["ExperimentReport", "BenchComparison"]

#: Fingerprint keys that must agree for timings to be comparable.
_MACHINE_KEYS = ("cpu_count", "platform", "machine", "python", "numpy")


def _same_machine(a: dict, b: dict) -> bool:
    return all(a.get(k) == b.get(k) for k in _MACHINE_KEYS)


@dataclass(frozen=True)
class BenchComparison:
    """Baseline-vs-current verdicts for one bench."""

    bench: str
    baseline_id: str | None
    current_ids: tuple[str, ...]
    verdicts: dict[str, RegressionVerdict] = field(default_factory=dict)
    machine_match: bool = True
    note: str = ""

    @property
    def regressed(self) -> bool:
        """Confirmed regression on at least one metric (only ever true
        when the machines match — cross-machine verdicts are advisory)."""
        return self.machine_match and any(
            v.regressed for v in self.verdicts.values()
        )

    @property
    def advisory_regressions(self) -> list[str]:
        return [m for m, v in self.verdicts.items() if v.regressed]

    def describe_lines(self) -> list[str]:
        lines = [f"[{self.bench}] baseline={self.baseline_id or '-'} "
                 f"current={len(self.current_ids)} run(s)"
                 + ("" if self.machine_match
                    else "  (ADVISORY: baseline from a different machine)")]
        if self.note:
            lines.append(f"  {self.note}")
        for metric in sorted(self.verdicts):
            lines.append("  " + self.verdicts[metric].describe())
        return lines


class ExperimentReport:
    """The main interface for questions about the stored history.

    Every result is computed lazily and memoized, so constructing a
    report costs nothing and a caller that only compares one bench only
    reads that bench's history file — once.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        baselines: BaselineRegistry | None = None,
        alpha: float = 0.05,
        min_effect: float = 1.10,
        window: int = 3,
        n_boot: int = 2000,
        seed: int = 0,
    ) -> None:
        self._store = store
        self._baselines = baselines or BaselineRegistry.for_store(store)
        self.alpha = alpha
        self.min_effect = min_effect
        self.window = window
        self.n_boot = n_boot
        self.seed = seed
        self._history: dict[str, tuple[RunRecord, ...]] = {}

    # ------------------------------------------------------------------
    # lazy history access
    # ------------------------------------------------------------------
    @cached_property
    def benches(self) -> tuple[str, ...]:
        return tuple(self._store.benches())

    def records(self, bench: str) -> tuple[RunRecord, ...]:
        """All stored records for ``bench``, oldest first (one file
        read per bench per report, memoized)."""
        if bench not in self._history:
            self._history[bench] = tuple(self._store.read(bench))
        return self._history[bench]

    @cached_property
    def baseline_ids(self) -> dict[str, str]:
        """Promoted baseline run id per bench (one registry read)."""
        return {
            bench: entry["run_id"]
            for bench, entry in self._baselines.load().items()
        }

    # ------------------------------------------------------------------
    # questions
    # ------------------------------------------------------------------
    def metrics(self, bench: str) -> tuple[str, ...]:
        """Sample metrics ever recorded for ``bench``."""
        names: set[str] = set()
        for rec in self.records(bench):
            names.update(rec.samples)
        return tuple(sorted(names))

    def time_series(
        self, bench: str, metric: str
    ) -> list[tuple[str, float, str | None, float]]:
        """``(run_id, timestamp, git_hash, median_seconds)`` per stored
        record that carries ``metric``, oldest first."""
        out = []
        for rec in self.records(bench):
            if metric in rec.samples:
                out.append((
                    rec.run_id, rec.timestamp, rec.git_hash,
                    float(np.median(rec.samples[metric])),
                ))
        return out

    def compare_runs(
        self, bench: str, baseline_id: str, current_id: str
    ) -> dict[str, RegressionVerdict]:
        """Pairwise run comparison over every shared sample metric."""
        by_id = {rec.run_id: rec for rec in self.records(bench)}
        try:
            base, cur = by_id[baseline_id], by_id[current_id]
        except KeyError as exc:
            raise KeyError(
                f"run {exc.args[0]!r} not in the {bench!r} history"
            ) from None
        shared = sorted(set(base.samples) & set(cur.samples))
        return {
            m: detect_regression(
                base.samples[m], cur.samples[m], metric=m,
                alpha=self.alpha, min_effect=self.min_effect,
                n_boot=self.n_boot, seed=self.seed,
            )
            for m in shared
        }

    def _baseline_pool(
        self, bench: str, baseline: RunRecord
    ) -> tuple[dict[str, list[float]], set[str]]:
        """The baseline's samples, enriched with stored runs from the
        same commit on the same machine taken *no later than* the
        baseline itself (repeated promote-time runs pool their samples
        for statistical power; runs after promotion stay "current", so
        a same-commit re-run can still be flagged)."""
        pool: dict[str, list[float]] = {
            m: list(v) for m, v in baseline.samples.items()
        }
        ids = {baseline.run_id}
        for rec in self.records(bench):
            if rec.run_id in ids or rec.timestamp > baseline.timestamp:
                continue
            if rec.git_hash is not None \
                    and rec.git_hash == baseline.git_hash \
                    and _same_machine(rec.machine, baseline.machine):
                ids.add(rec.run_id)
                for m, v in rec.samples.items():
                    pool.setdefault(m, []).extend(v)
        return pool, ids

    def regressions(self, bench: str) -> BenchComparison:
        """The gate: newest ``window`` runs vs the promoted baseline."""
        records = self.records(bench)
        if not records:
            return BenchComparison(bench, None, (), note="no stored runs")
        baseline_id = self.baseline_ids.get(bench)
        if baseline_id is None:
            return BenchComparison(
                bench, None, tuple(r.run_id for r in records[-self.window:]),
                note="no promoted baseline — recording only",
            )
        baseline = next(
            (r for r in records if r.run_id == baseline_id), None
        )
        if baseline is None:
            return BenchComparison(
                bench, baseline_id, (),
                note=f"promoted baseline {baseline_id!r} is missing from "
                     f"the history",
            )
        base_pool, base_ids = self._baseline_pool(bench, baseline)
        current = [r for r in records if r.run_id not in base_ids]
        current = current[-self.window:]
        if not current:
            return BenchComparison(
                bench, baseline_id, (), machine_match=True,
                note="no runs newer than the baseline pool",
            )
        machine_match = all(
            _same_machine(r.machine, baseline.machine) for r in current
        )
        cur_pool: dict[str, list[float]] = {}
        for rec in current:
            for m, v in rec.samples.items():
                cur_pool.setdefault(m, []).extend(v)
        shared = sorted(set(base_pool) & set(cur_pool))
        verdicts = {
            m: detect_regression(
                base_pool[m], cur_pool[m], metric=m,
                alpha=self.alpha, min_effect=self.min_effect,
                n_boot=self.n_boot, seed=self.seed,
            )
            for m in shared
        }
        return BenchComparison(
            bench, baseline_id, tuple(r.run_id for r in current),
            verdicts=verdicts, machine_match=machine_match,
        )

    @cached_property
    def all_regressions(self) -> dict[str, BenchComparison]:
        """The gate verdict for every bench with stored history."""
        return {bench: self.regressions(bench) for bench in self.benches}

    def summary_lines(self) -> list[str]:
        lines: list[str] = []
        for bench in self.benches:
            lines.extend(self.all_regressions[bench].describe_lines())
        if not lines:
            lines.append(f"(run store {self._store.root} is empty)")
        return lines
