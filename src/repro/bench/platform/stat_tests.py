"""Statistical comparison of benchmark sample sets (stdlib + numpy).

A "regression" in this repo means *statistically slower than the
stored baseline with repeated samples*, not "crossed 1.4x".  The
verdict combines three independent checks, all of which must agree
before a run is called regressed (fuzzbench's ``stat_tests`` +
effect-size discipline, without the scipy/pandas dependency):

1. **Mann-Whitney U** (one-sided, normal approximation with tie and
   continuity correction): the current samples are stochastically
   larger than the baseline's with ``p < alpha``.
2. **Practical effect floor**: the median ratio current/baseline is at
   least ``min_effect`` (default 5%), so machine jitter that is
   "significant" but tiny never fails a build.
3. **Bootstrap confidence**: the seeded-bootstrap confidence interval
   of the median ratio lies entirely above 1.0.

All samples here are wall-clock seconds (or dimensionless ratios of
them) where *lower is better*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "MannWhitneyResult",
    "RegressionVerdict",
    "rankdata",
    "mann_whitney_u",
    "a12",
    "bootstrap_median_ratio_ci",
    "detect_regression",
    "MIN_SAMPLES",
]

#: Below this many samples per side no statistical claim is made; the
#: verdict reports "insufficient samples" and never flags a regression.
MIN_SAMPLES = 3


def _as_array(x: Sequence[float], name: str) -> np.ndarray:
    arr = np.asarray(list(x), dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a 1-d sequence")
    if arr.size and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite samples")
    return arr


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    arr = _as_array(values, "values")
    order = np.argsort(arr, kind="mergesort")
    ranks = np.empty(arr.size, dtype=np.float64)
    sorted_vals = arr[order]
    i = 0
    while i < arr.size:
        j = i
        while j + 1 < arr.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Positions i..j (0-based) share the average of ranks i+1..j+1.
        ranks[order[i:j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return ranks


def _normal_sf(z: float) -> float:
    """P(Z > z) for a standard normal (stdlib erfc, no scipy)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class MannWhitneyResult:
    u: float          # U statistic of the *first* sample
    p_value: float
    alternative: str  # "two-sided" | "greater" | "less"


def mann_whitney_u(
    a: Sequence[float],
    b: Sequence[float],
    *,
    alternative: str = "two-sided",
) -> MannWhitneyResult:
    """Mann-Whitney U test via the normal approximation.

    ``alternative="greater"`` tests whether samples in ``a`` tend to be
    larger than samples in ``b``.  The approximation includes the tie
    correction to the variance and a 0.5 continuity correction; it is
    accurate for the sample sizes benchmarks produce (>= ~5 per side)
    and conservative below that.
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError(f"unknown alternative {alternative!r}")
    x = _as_array(a, "a")
    y = _as_array(b, "b")
    n1, n2 = x.size, y.size
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    combined = np.concatenate([x, y])
    ranks = rankdata(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0  # U of sample a

    mean_u = n1 * n2 / 2.0
    n = n1 + n2
    # Tie correction: sum over tie groups of (t^3 - t).
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float(((counts ** 3) - counts).sum())
    var_u = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0:
        # All observations identical: no evidence either way.
        p = 1.0
        return MannWhitneyResult(u1, p, alternative)

    sd = math.sqrt(var_u)
    if alternative == "two-sided":
        z = (abs(u1 - mean_u) - 0.5) / sd
        p = min(1.0, 2.0 * _normal_sf(max(z, 0.0)))
    elif alternative == "greater":
        z = (u1 - mean_u - 0.5) / sd
        p = _normal_sf(z)
    else:  # "less"
        z = (u1 - mean_u + 0.5) / sd
        p = 1.0 - _normal_sf(z)
    return MannWhitneyResult(u1, min(max(p, 0.0), 1.0), alternative)


def a12(a: Sequence[float], b: Sequence[float]) -> float:
    """Vargha-Delaney effect size: P(sample of ``a`` > sample of ``b``)
    plus half the tie probability.  0.5 means no effect."""
    x = _as_array(a, "a")
    y = _as_array(b, "b")
    if x.size == 0 or y.size == 0:
        raise ValueError("a12 needs non-empty samples")
    greater = (x[:, None] > y[None, :]).sum()
    equal = (x[:, None] == y[None, :]).sum()
    return float((greater + 0.5 * equal) / (x.size * y.size))


def bootstrap_median_ratio_ci(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    n_boot: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap CI of median(current)/median(base).

    Deterministic for a given seed, so a stored verdict is
    reproducible.  Lower CI bound > 1.0 means the slowdown survives
    resampling noise.
    """
    base = _as_array(baseline, "baseline")
    cur = _as_array(current, "current")
    if base.size == 0 or cur.size == 0:
        raise ValueError("bootstrap needs non-empty samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    b_idx = rng.integers(0, base.size, size=(n_boot, base.size))
    c_idx = rng.integers(0, cur.size, size=(n_boot, cur.size))
    b_med = np.median(base[b_idx], axis=1)
    c_med = np.median(cur[c_idx], axis=1)
    # Guard the degenerate all-zero-baseline resample.
    ratios = c_med / np.where(b_med == 0, np.finfo(np.float64).tiny, b_med)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(ratios, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


@dataclass(frozen=True)
class RegressionVerdict:
    """The three-way verdict for one metric of one bench."""

    metric: str
    regressed: bool
    p_value: float | None
    median_ratio: float | None
    effect_a12: float | None
    ci_low: float | None
    ci_high: float | None
    n_baseline: int
    n_current: int
    note: str = ""

    def describe(self) -> str:
        if self.median_ratio is None:
            return f"{self.metric}: {self.note or 'no comparison'}"
        tag = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric}: {tag} ratio={self.median_ratio:.3f}x "
            f"p={self.p_value:.4f} A12={self.effect_a12:.2f} "
            f"ci=[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"(n={self.n_baseline} vs {self.n_current})"
            + (f" — {self.note}" if self.note else "")
        )


def detect_regression(
    baseline: Sequence[float],
    current: Sequence[float],
    *,
    metric: str = "wall_s",
    alpha: float = 0.05,
    min_effect: float = 1.05,
    n_boot: int = 2000,
    seed: int = 0,
) -> RegressionVerdict:
    """Is ``current`` statistically slower than ``baseline``?

    Samples are times (lower is better).  All three checks — one-sided
    Mann-Whitney ``p < alpha``, median ratio >= ``min_effect``, and
    bootstrap CI entirely above 1.0 — must agree.
    """
    base = _as_array(baseline, "baseline")
    cur = _as_array(current, "current")
    if base.size < MIN_SAMPLES or cur.size < MIN_SAMPLES:
        return RegressionVerdict(
            metric=metric, regressed=False, p_value=None,
            median_ratio=None, effect_a12=None, ci_low=None, ci_high=None,
            n_baseline=int(base.size), n_current=int(cur.size),
            note=f"insufficient samples (need >= {MIN_SAMPLES} per side)",
        )
    base_med = float(np.median(base))
    cur_med = float(np.median(cur))
    ratio = cur_med / base_med if base_med > 0 else math.inf
    mw = mann_whitney_u(cur, base, alternative="greater")
    effect = a12(cur, base)
    lo, hi = bootstrap_median_ratio_ci(
        base, cur, n_boot=n_boot, seed=seed,
    )
    regressed = (mw.p_value < alpha) and (ratio >= min_effect) and (lo > 1.0)
    return RegressionVerdict(
        metric=metric, regressed=bool(regressed), p_value=mw.p_value,
        median_ratio=ratio, effect_a12=effect, ci_low=lo, ci_high=hi,
        n_baseline=int(base.size), n_current=int(cur.size),
    )
