"""Crash-safe file I/O: atomic writes, checksums, fault injection.

Every artifact the shard runtime persists — spill files, ledger lines,
and (via :mod:`repro.runtime.checkpoint`) JSON checkpoints — goes
through this module, which provides exactly three guarantees:

* **atomicity** — :func:`atomic_write_bytes` writes a sibling temp
  file, flushes and ``fsync``\\ s it, then ``os.replace``\\ s into place
  and fsyncs the directory entry, so a crash leaves either the old
  artifact or the new one, never a half-written file under the real
  name;
* **integrity** — every write returns the sha256 content checksum of
  the *intended* bytes; :func:`verify_file` recomputes it on read and
  raises :class:`~repro.errors.IOIntegrityError` on mismatch (the only
  way a torn-but-renamed write can be observed);
* **determinism under faults** — when a
  :class:`~repro.runtime.faults.FaultPlan` is supplied, each write and
  each verification advances the plan's I/O op counters and consumes
  any due ``io_*`` spec, so CI can place a partial write, a corrupt
  read, or an ``ENOSPC`` at an exactly-reproducible operation.

Fault semantics (mirroring what real disks do):

``io_partial_write``
    the payload is truncated to half before the write, but the rename
    still lands and the *intended* checksum is returned — the writer
    believes it succeeded; only checksum verification on a later read
    can detect the tear.
``io_corrupt_read``
    :func:`verify_file` poisons the computed digest once, so a
    byte-identical file fails verification — bit-rot without touching
    the file.
``io_enospc``
    the write raises ``OSError(ENOSPC)`` before any bytes land.
"""

from __future__ import annotations

import errno
import hashlib
import os

from repro.errors import IOIntegrityError

__all__ = [
    "checksum_bytes",
    "checksum_file",
    "atomic_write_bytes",
    "atomic_write_text",
    "append_text",
    "verify_file",
    "quarantine",
    "CORRUPT_SUFFIX",
]

#: Suffix appended to artifacts that failed checksum verification.
CORRUPT_SUFFIX = ".corrupt"

_CHUNK = 1 << 20


def checksum_bytes(data: bytes) -> str:
    """sha256 content checksum, truncated to 16 hex chars (the same
    width as :func:`repro.runtime.checkpoint.graph_fingerprint`)."""
    return hashlib.sha256(data).hexdigest()[:16]


def checksum_file(path: str | os.PathLike[str]) -> str:
    """Chunked :func:`checksum_bytes` of a file's current contents."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(_CHUNK)
            if not block:
                break
            h.update(block)
    return h.hexdigest()[:16]


def _fsync_dir(path: str) -> None:
    # Directory fsync makes the rename itself durable; some platforms
    # (and some filesystems) refuse O_RDONLY dir fds — best-effort.
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike[str],
    data: bytes,
    *,
    faults=None,
    fsync: bool = True,
) -> str:
    """Atomically write ``data`` to ``path``; return its checksum.

    The returned checksum is always that of the *intended* payload —
    under an injected ``io_partial_write`` the file on disk is shorter,
    which is exactly how a torn write looks to a resuming process.
    """
    path = os.fspath(path)
    spec = faults.take_io_fault("write") if faults is not None else None
    if spec is not None and spec.kind == "io_enospc":
        raise OSError(
            errno.ENOSPC, f"injected ENOSPC at write op {faults.io_writes}", path
        )
    payload = data
    if spec is not None and spec.kind == "io_partial_write":
        payload = data[: len(data) // 2]
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(payload)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(path)
    return checksum_bytes(data)


def atomic_write_text(
    path: str | os.PathLike[str], text: str, *, faults=None, fsync: bool = True
) -> str:
    """UTF-8 wrapper around :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, text.encode("utf-8"), faults=faults, fsync=fsync
    )


def append_text(
    path: str | os.PathLike[str], text: str, *, faults=None, fsync: bool = True
) -> None:
    """Append ``text`` (one ledger line) with fsync; fault-injectable.

    Appends are not atomic — a crash (or an injected partial write) can
    leave a torn trailing line, which is why every ledger line carries
    its own checksum and the loader truncates the file back to the last
    valid line (see :mod:`repro.shard.ledger`).
    """
    path = os.fspath(path)
    spec = faults.take_io_fault("write") if faults is not None else None
    if spec is not None and spec.kind == "io_enospc":
        raise OSError(
            errno.ENOSPC, f"injected ENOSPC at write op {faults.io_writes}", path
        )
    payload = text.encode("utf-8")
    if spec is not None and spec.kind == "io_partial_write":
        payload = payload[: len(payload) // 2]
    with open(path, "ab") as fh:
        fh.write(payload)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())


def verify_file(
    path: str | os.PathLike[str], expected: str, *, faults=None
) -> None:
    """Verify ``path`` hashes to ``expected``; raise on mismatch.

    The read-side fault seam: an armed ``io_corrupt_read`` poisons the
    computed digest, so verification fails even though the bytes on
    disk are intact.  Raises :class:`~repro.errors.IOIntegrityError`
    carrying the path; the caller decides whether to quarantine.
    """
    path = os.fspath(path)
    spec = faults.take_io_fault("read") if faults is not None else None
    try:
        computed = checksum_file(path)
    except OSError as exc:
        raise IOIntegrityError(
            f"{path}: cannot read for verification: {exc}", path=path
        ) from exc
    if spec is not None and spec.kind == "io_corrupt_read":
        computed = checksum_bytes(b"io_corrupt_read:" + computed.encode())
    if computed != expected:
        raise IOIntegrityError(
            f"{path}: checksum mismatch (stored {expected}, computed "
            f"{computed}) — artifact is torn or corrupt",
            path=path,
        )


def quarantine(path: str | os.PathLike[str]) -> str:
    """Move a corrupt artifact aside as ``<path>.corrupt``; return the
    new name.  Never raises: quarantine is best-effort cleanup on an
    error path (a vanished file is already out of the way)."""
    path = os.fspath(path)
    target = f"{path}{CORRUPT_SUFFIX}"
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - already gone / unwritable dir
        pass
    return target
