"""Crash-safe shard ledger: append-only JSON-lines progress record.

The ledger is the shard runtime's resume mechanism — the durable
analogue of the PR 2 checkpoint, shaped for append-mostly progress:

* line 1 is a **header** carrying the format version and the run
  descriptor (engine, k, structure, kernel, graph/DAG fingerprints and
  the shard-plan fingerprint), so resuming against different inputs is
  refused with the same descriptor-mismatch discipline as
  :func:`repro.runtime.checkpoint.load_checkpoint`;
* each subsequent line records one event — ``spill`` (a shard's slice
  files landed, with their checksum manifest), ``done`` (a shard's
  exact partial result), or ``complete`` (the whole run folded);
* **every line carries its own content checksum** over the canonical
  JSON encoding of the record, and every append is fsync'd.

Appends are not atomic, so a kill mid-append leaves a torn trailing
line.  On resume the loader walks the file line by line, stops at the
first line that fails to parse or verify, and truncates the file back
to the last valid line — everything after a tear is treated as never
having happened, which is safe because a shard whose ``done`` record
was lost is simply recounted (per-root additivity makes the recount
bit-identical).
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import CheckpointError
from repro.shard import safeio

__all__ = ["ShardLedger", "LEDGER_VERSION", "LEDGER_NAME"]

LEDGER_VERSION = 1
LEDGER_NAME = "ledger.jsonl"


def _line_checksum(record: dict) -> str:
    body = json.dumps(
        {k: v for k, v in record.items() if k != "checksum"},
        sort_keys=True,
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class ShardLedger:
    """The per-spill-directory progress ledger.

    Attributes after :meth:`open`:

    ``spilled``
        shard index -> spill manifest (latest ``spill`` record wins, so
        a respill after quarantine supersedes the torn artifact's
        checksums);
    ``done``
        shard index -> partial-result state dict;
    ``complete``
        whether a ``complete`` record was replayed.
    """

    def __init__(self, path: str | os.PathLike[str], *, faults=None) -> None:
        self.path = os.fspath(path)
        self.faults = faults
        self.header: dict | None = None
        self.spilled: dict[int, dict] = {}
        self.done: dict[int, dict] = {}
        self.complete = False

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | os.PathLike[str],
        descriptor: dict,
        *,
        resume: bool = False,
        faults=None,
    ) -> "ShardLedger":
        """Open (and on resume, replay) the ledger at ``path``.

        Without ``resume`` any existing ledger is overwritten with a
        fresh header; with it, the stored descriptor must match —
        resuming a ledger written for a different graph, ordering, k,
        kernel, or shard plan raises
        :class:`~repro.errors.CheckpointError`.
        """
        led = cls(path, faults=faults)
        if resume and os.path.exists(led.path):
            led._replay(descriptor)
            return led
        header = {
            "type": "header",
            "version": LEDGER_VERSION,
            "descriptor": descriptor,
        }
        header["checksum"] = _line_checksum(header)
        try:
            safeio.atomic_write_text(
                led.path, json.dumps(header) + "\n", faults=faults
            )
        except OSError as exc:
            raise CheckpointError(
                f"cannot create shard ledger {led.path}: {exc}"
            ) from exc
        led.header = header
        return led

    # ------------------------------------------------------------------
    def _replay(self, descriptor: dict) -> None:
        with open(self.path, "rb") as fh:
            raw = fh.read()
        valid_end = 0
        lineno = 0
        records: list[dict] = []
        for chunk in raw.split(b"\n"):
            end = valid_end + len(chunk) + 1  # +1 for the newline
            if end > len(raw):
                break  # trailing chunk with no newline: torn, discard
            lineno += 1
            try:
                record = json.loads(chunk.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            if (
                not isinstance(record, dict)
                or record.get("checksum") != _line_checksum(record)
            ):
                break
            records.append(record)
            valid_end = end
        if valid_end < len(raw):
            # Torn or corrupt tail: truncate back to the last valid
            # line so the next append starts on a clean boundary.
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        if not records or records[0].get("type") != "header":
            raise CheckpointError(
                f"{self.path}: line 1: missing or corrupt ledger header"
            )
        header = records[0]
        version = header.get("version")
        if version != LEDGER_VERSION:
            raise CheckpointError(
                f"{self.path}: ledger has version {version!r}, "
                f"expected {LEDGER_VERSION}"
            )
        stored = header.get("descriptor") or {}
        for key, want in descriptor.items():
            got = stored.get(key)
            if got != want:
                raise CheckpointError(
                    f"{self.path}: ledger was written for {key}={got!r}, "
                    f"this run has {key}={want!r}"
                )
        self.header = header
        for record in records[1:]:
            kind = record.get("type")
            if kind == "spill":
                self.spilled[int(record["shard"])] = record["manifest"]
            elif kind == "done":
                self.done[int(record["shard"])] = record["state"]
            elif kind == "complete":
                self.complete = True

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        record["checksum"] = _line_checksum(record)
        safeio.append_text(
            self.path, json.dumps(record) + "\n", faults=self.faults
        )

    def record_spill(self, index: int, manifest: dict) -> None:
        self._append({"type": "spill", "shard": int(index), "manifest": manifest})
        self.spilled[int(index)] = manifest

    def record_done(self, index: int, state: dict) -> None:
        self._append({"type": "done", "shard": int(index), "state": state})
        self.done[int(index)] = state

    def record_complete(self) -> None:
        self._append({"type": "complete"})
        self.complete = True
