"""Vertex-shard planner: contiguous root ranges under a byte watermark.

Generalizes the PR 5 chunk planner (which balances *work* across pool
workers) to balance *bytes*: each shard is a contiguous root range
``[lo, hi)`` whose spilled CSR slice is estimated to fit under the
configured watermark, so the executor's counting working set stays
bounded no matter how large the resident graph is.

The per-root byte estimate is a safe upper bound on what
``build_local_rows`` touches when counting root ``v``:

* the root's DAG out-neighborhood (``8 * deg⁺(v)`` bytes of indices),
  plus
* the *full undirected adjacency row* of every out-neighbor
  (``Σ_{u ∈ N⁺(v)} 8 * deg(u)`` bytes) — full rows, because the kernel
  intersects each member's complete neighborhood against the local
  subgraph; truncating them would change counts and work counters.

Closure rows shared between roots of the same shard are counted once
per root, so the estimate over-counts — the safe direction: a shard
never exceeds its watermark because of a shared row.

A root whose own estimate exceeds the watermark still gets a
(singleton) shard: a root is the atomic unit of the SCT recursion and
cannot be split.  The plan fingerprint hashes the cut array together
with the graph and DAG fingerprints, and keys the ledger (resuming
against a different plan, graph, or ordering is refused).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import CountingError
from repro.runtime.checkpoint import graph_fingerprint

__all__ = ["Shard", "ShardPlan", "plan_shards", "estimate_root_bytes"]

_BYTES_PER_ENTRY = 8  # int64 CSR index entries


@dataclass(frozen=True)
class Shard:
    """One contiguous root range ``[lo, hi)`` with its byte estimate."""

    index: int
    lo: int
    hi: int
    est_bytes: int

    @property
    def num_roots(self) -> int:
        return self.hi - self.lo


@dataclass(frozen=True)
class ShardPlan:
    """An ordered, exhaustive partition of ``[0, n)`` into shards."""

    shards: tuple[Shard, ...]
    shard_bytes: int
    fingerprint: str

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def estimate_root_bytes(graph, dag) -> np.ndarray:
    """Per-root spill-slice byte estimates (int64 array of length n)."""
    n = dag.num_vertices
    member_cost = _BYTES_PER_ENTRY * graph.degrees.astype(np.int64)
    ddeg = dag.degrees.astype(np.int64)
    costs = _BYTES_PER_ENTRY * ddeg
    if dag.indices.size:
        entry_root = np.repeat(np.arange(n, dtype=np.int64), ddeg)
        costs = costs + np.bincount(
            entry_root, weights=member_cost[dag.indices], minlength=n
        ).astype(np.int64)
    return costs


def plan_shards(graph, dag, *, shard_bytes: int) -> ShardPlan:
    """Greedily cut ``[0, n)`` into shards under ``shard_bytes``."""
    if shard_bytes < 1:
        raise CountingError(f"shard_bytes must be >= 1, got {shard_bytes}")
    n = dag.num_vertices
    costs = estimate_root_bytes(graph, dag)
    shards: list[Shard] = []
    lo = 0
    acc = 0
    for v in range(n):
        c = int(costs[v])
        if v > lo and acc + c > shard_bytes:
            shards.append(Shard(len(shards), lo, v, acc))
            lo, acc = v, 0
        acc += c
    if n > lo:
        shards.append(Shard(len(shards), lo, n, acc))
    bounds = np.array(
        [[s.lo, s.hi] for s in shards], dtype=np.int64
    ).reshape(-1, 2)
    h = hashlib.sha256()
    h.update(graph_fingerprint(graph).encode())
    h.update(graph_fingerprint(dag).encode())
    h.update(np.int64(shard_bytes).tobytes())
    h.update(bounds.tobytes())
    return ShardPlan(
        shards=tuple(shards),
        shard_bytes=int(shard_bytes),
        fingerprint=h.hexdigest()[:16],
    )
