"""Per-shard CSR slices spilled to mmap-backed ``.npy`` files.

A shard's slice holds exactly what :meth:`SCTEngine.count_roots` reads
when counting roots ``[lo, hi)``, in full-size CSR form (``indptr`` of
length ``n + 1``) so vertex ids need no remapping:

* **DAG slice** — rows ``lo..hi-1`` keep their out-neighbor lists;
  every other row is empty;
* **graph slice** — the *complete undirected rows* of every vertex in
  the closure (the union of the shard roots' DAG out-neighborhoods);
  every other row is empty.  Full rows are load-bearing:
  ``build_local_rows`` intersects each member's whole neighborhood and
  charges ``build_words += nbrs.size``, so a truncated row would
  silently change counters (and, for counts, correctness).

Each of the four arrays is serialized with ``np.save`` into memory and
written through :func:`repro.shard.safeio.atomic_write_bytes`, giving
a content checksum per file; the loader verifies every checksum before
``np.load(mmap_mode="r")`` maps the arrays, so a torn or corrupt spill
is detected *before* any counting touches it.  The mapped arrays back
``CSRGraph(validate=False)`` instances — data is paged in on demand,
which is the whole point of spilling.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.graph.csr import CSRGraph
from repro.shard import safeio

__all__ = [
    "SPILL_ARRAYS",
    "shard_paths",
    "slice_arrays",
    "write_shard_spill",
    "load_shard_slice",
]

#: The four arrays persisted per shard, in write (and verify) order.
SPILL_ARRAYS = ("graph_indptr", "graph_indices", "dag_indptr", "dag_indices")


def shard_paths(spill_dir: str | os.PathLike[str], index: int) -> dict:
    """Map array name -> spill file path for shard ``index``."""
    base = os.fspath(spill_dir)
    return {
        name: os.path.join(base, f"shard{index:05d}.{name}.npy")
        for name in SPILL_ARRAYS
    }


def slice_arrays(graph, dag, lo: int, hi: int) -> dict:
    """Extract the four slice arrays for roots ``[lo, hi)``."""
    n = dag.num_vertices
    ddeg = dag.degrees.astype(np.int64)
    gdeg = graph.degrees.astype(np.int64)

    d_counts = np.zeros(n, dtype=np.int64)
    d_counts[lo:hi] = ddeg[lo:hi]
    d_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(d_counts, out=d_indptr[1:])
    d_indices = np.ascontiguousarray(
        dag.indices[dag.indptr[lo] : dag.indptr[hi]], dtype=np.int64
    )

    keep = np.zeros(n, dtype=bool)
    if d_indices.size:
        keep[np.unique(d_indices)] = True
    g_counts = np.where(keep, gdeg, 0)
    g_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(g_counts, out=g_indptr[1:])
    if graph.indices.size:
        entry_row = np.repeat(np.arange(n, dtype=np.int64), gdeg)
        g_indices = np.ascontiguousarray(
            graph.indices[keep[entry_row]], dtype=np.int64
        )
    else:
        g_indices = np.empty(0, dtype=np.int64)

    return {
        "graph_indptr": g_indptr,
        "graph_indices": g_indices,
        "dag_indptr": d_indptr,
        "dag_indices": d_indices,
    }


def write_shard_spill(
    spill_dir: str | os.PathLike[str], shard, graph, dag, *, faults=None
) -> dict:
    """Spill one shard's slice; return its manifest.

    The manifest maps array name to ``{"checksum", "bytes"}`` and is
    recorded in the ledger so a resumed run can re-verify artifacts it
    did not write itself.
    """
    arrays = slice_arrays(graph, dag, shard.lo, shard.hi)
    paths = shard_paths(spill_dir, shard.index)
    manifest: dict = {}
    for name in SPILL_ARRAYS:
        buf = io.BytesIO()
        np.save(buf, arrays[name], allow_pickle=False)
        data = buf.getvalue()
        checksum = safeio.atomic_write_bytes(paths[name], data, faults=faults)
        manifest[name] = {"checksum": checksum, "bytes": len(data)}
    return manifest


def load_shard_slice(
    spill_dir: str | os.PathLike[str], shard, manifest: dict, *, faults=None
):
    """Verify and mmap one shard's slice; return ``(graph, dag)``.

    Every file is checksum-verified before any array is mapped.  On a
    mismatch the offending file is quarantined (renamed ``.corrupt``)
    and :class:`~repro.errors.IOIntegrityError` propagates with the
    quarantined name attached — the executor's cue to respill and
    retry.
    """
    from repro.errors import IOIntegrityError

    paths = shard_paths(spill_dir, shard.index)
    for name in SPILL_ARRAYS:
        try:
            safeio.verify_file(
                paths[name], manifest[name]["checksum"], faults=faults
            )
        except IOIntegrityError as exc:
            exc.quarantined = safeio.quarantine(paths[name])
            raise
    arrays = {
        name: np.load(paths[name], mmap_mode="r") for name in SPILL_ARRAYS
    }
    sliced_graph = CSRGraph(
        arrays["graph_indptr"],
        arrays["graph_indices"],
        directed=False,
        validate=False,
    )
    sliced_dag = CSRGraph(
        arrays["dag_indptr"],
        arrays["dag_indices"],
        directed=True,
        validate=False,
    )
    return sliced_graph, sliced_dag
