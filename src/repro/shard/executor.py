"""The crash-safe out-of-core shard executor.

:func:`count_sharded` runs one counting workload — target-k or all-k —
as a sequence of independent vertex shards (see
:mod:`repro.shard.planner`).  Each shard's CSR slice is spilled to
mmap-backed ``.npy`` files (:mod:`repro.shard.spill`), counted through
the ordinary :class:`~repro.counting.sct.SCTEngine` (serially or via
the PR 5 process pool), and its exact partial result is appended to the
crash-safe ledger (:mod:`repro.shard.ledger`).  Per-root additivity of
the SCT recursion makes the fold exact: the sharded total is
bit-identical to the in-memory engines, counters included.

Fault handling is the robustness story:

* every spill artifact carries a content checksum; a torn or corrupt
  file (including the injected ``io_partial_write`` /
  ``io_corrupt_read`` faults) is detected on read-verify, quarantined
  (renamed ``*.corrupt``), and the shard is **respilled and retried**
  with bounded, seeded exponential backoff;
* ``OSError`` during a spill (including injected ``io_enospc``) takes
  the same retry path;
* only when the retries are exhausted does the degradation ladder
  engage: with ``degrade=True`` the shard is recounted exactly from the
  resident in-memory graph and the result is flagged
  ``degraded_from="shard"``; otherwise :class:`~repro.errors.ShardError`
  propagates.  A single injected I/O fault therefore never produces a
  wrong count or an unhandled traceback.

Crash safety: a killed run (interrupt fault, budget abort, SIGKILL) is
resumed with ``resume=True`` — the ledger is replayed (torn tail
truncated), completed shards are folded from their recorded partial
results, and only the remaining shards are recounted, landing on
bit-identical output.  Budgets are metered per invocation: a resumed
run charges only the shards it actually counts.

The :class:`~repro.runtime.RunController` cooperates at **shard**
granularity — ``tick`` (faults + deadline) at each shard boundary,
``charge_nodes`` / ``note_memory`` before a shard's fold,
``complete_roots`` after — mirroring the chunk-granularity contract of
the parallel runtime.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np

from repro import obs
from repro.errors import IOIntegrityError, ShardError
from repro.counting.counters import Counters
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering
from repro.ordering.directionalize import directionalize
from repro.runtime.checkpoint import graph_fingerprint
from repro.runtime.controller import RunController
from repro.shard.ledger import LEDGER_NAME, ShardLedger
from repro.shard.planner import ShardPlan, plan_shards
from repro.shard.spill import load_shard_slice, write_shard_spill

__all__ = ["count_sharded"]

# Test seam (mirrors repro.parallel.runtime._sleep): monkeypatch to
# assert on retry delays without actually sleeping.
_sleep = time.sleep


def _retry_delay(rng: random.Random, attempt: int, backoff: float) -> float:
    """Seeded exponential backoff with jitter for retry ``attempt``
    (1-based).  The jitter stream advances even at ``backoff == 0`` so
    enabling real sleeps never changes the delays drawn."""
    jitter = 0.5 + rng.random()
    if backoff <= 0.0:
        return 0.0
    return backoff * (2.0 ** (attempt - 1)) * jitter


def _spill_files_present(spill_dir, shard) -> bool:
    from repro.shard.spill import shard_paths

    return all(
        os.path.exists(p) for p in shard_paths(spill_dir, shard.index).values()
    )


def _count_slice(
    sliced_graph,
    sliced_dag,
    shard,
    *,
    k,
    max_k,
    structure,
    kernel,
    processes,
    chunks_per_process,
    runtime,
) -> dict:
    """Count one shard's roots on its mmapped slice; return the
    JSON-ready partial-result state recorded in the ledger."""
    lo, hi = shard.lo, shard.hi
    state: dict = {"lo": lo, "hi": hi}
    if processes is not None and processes > 1:
        from repro.parallel.runtime import parallel_count

        res = parallel_count(
            sliced_graph, sliced_dag, k=k, max_k=max_k,
            structure=structure, kernel=kernel, processes=processes,
            chunks_per_process=chunks_per_process, runtime=runtime,
            roots=np.arange(lo, hi, dtype=np.int64),
        )
        state["count"] = 0 if res.count is None else res.count
        state["all_counts"] = (
            None if res.all_counts is None else list(res.all_counts)
        )
        state["counters"] = res.counters.as_dict()
        state["per_root_work"] = res.per_root_work[lo:hi].tolist()
        state["per_root_memory"] = res.per_root_memory[lo:hi].tolist()
    else:
        from repro.counting.sct import SCTEngine

        eng = SCTEngine(sliced_graph, sliced_dag, structure, kernel=kernel)
        batch = eng.count_roots(range(lo, hi), k, max_k=max_k)
        state["count"] = batch.count
        state["all_counts"] = batch.all_counts
        state["counters"] = batch.counters.as_dict()
        state["per_root_work"] = list(batch.per_root_work)
        state["per_root_memory"] = list(batch.per_root_memory)
    return state


def count_sharded(
    graph: CSRGraph,
    ordering: Ordering | np.ndarray | CSRGraph,
    *,
    k: int | None = None,
    max_k: int | None = None,
    structure: str = "remap",
    kernel=None,
    shard_bytes: int | None = None,
    shard_mb: float | None = None,
    spill_dir: str | os.PathLike[str],
    resume: bool = False,
    controller: RunController | None = None,
    faults=None,
    degrade: bool = False,
    processes: int | None = None,
    chunks_per_process: int = 4,
    runtime=None,
    max_retries: int = 3,
    retry_backoff: float = 0.0,
    retry_seed: int = 0,
):
    """Count cliques out-of-core through the crash-safe shard runtime.

    Exact and bit-identical to the in-memory engines for both target-k
    (``k`` set) and all-k (``k=None``) runs, on either kernel; see the
    module docstring for the fault and resume semantics.

    Parameters
    ----------
    shard_mb / shard_bytes:
        The spill-slice watermark (exactly one required); ``shard_mb``
        is the MiB convenience form matching
        :class:`~repro.core.config.PivotScaleConfig`.
    spill_dir:
        Directory for the spill files and the ledger (created if
        missing).  One directory serves one plan at a time.
    resume:
        Replay the ledger in ``spill_dir`` and recount only the shards
        without a recorded partial result.
    controller:
        Optional :class:`~repro.runtime.RunController`, honored at
        shard granularity.  In shard mode the ledger — not the JSON
        checkpoint — is the resume mechanism, so a controller begun
        here never loads a checkpoint.
    faults:
        A :class:`~repro.runtime.faults.FaultPlan`; its I/O fault specs
        are injected through the safeio layer under every spill,
        ledger, and (via the controller) checkpoint write, and its
        interrupt/clock faults fire at shard boundaries.  Defaults to
        ``controller.faults``.
    degrade:
        Allow the shard rung of the degradation ladder: a shard whose
        retries are exhausted is recounted exactly from the resident
        graph and the result flagged ``degraded_from="shard"``.
        ``controller.degrade`` also enables it.
    processes:
        ``None``/``1`` counts each shard's slice serially in-process;
        ``>= 2`` routes each shard through the process pool
        (``runtime`` is reused across shards when given).
    max_retries:
        Bounded respill-and-recount retries per failed shard before the
        degradation ladder engages.
    retry_backoff / retry_seed:
        Base seconds and seed for the deterministic exponential-backoff
        jitter between retries (default 0.0: no sleeping).

    Returns
    -------
    CountResult
        The same result object as the serial engines, with
        ``degraded_from="shard"`` when the fallback rung engaged.
    """
    from repro.counting.sct import CountResult, SCTEngine
    from repro.errors import CountingError

    if k is not None and k < 1:
        raise CountingError(f"clique size k must be >= 1, got {k}")
    if (shard_bytes is None) == (shard_mb is None):
        raise CountingError("pass exactly one of shard_bytes / shard_mb")
    if shard_bytes is None:
        shard_bytes = max(1, int(shard_mb * (1 << 20)))
    if max_retries < 0:
        raise CountingError("max_retries must be >= 0")
    if isinstance(ordering, CSRGraph):
        dag = ordering
    else:
        dag = directionalize(graph, ordering)
    from repro.parallel.runtime import _kernel_name

    kernel_name = _kernel_name(kernel)

    plan = plan_shards(graph, dag, shard_bytes=shard_bytes)
    descriptor = {
        "engine": "sct-shard",
        "k": k,
        "max_k": max_k,
        "structure": structure,
        "kernel": kernel_name,
        "graph_fingerprint": graph_fingerprint(graph),
        "dag_fingerprint": graph_fingerprint(dag),
        "num_shards": plan.num_shards,
        "shard_plan": plan.fingerprint,
    }

    ctl = controller
    if faults is None and ctl is not None:
        faults = ctl.faults
    allow_degrade = degrade or (ctl is not None and ctl.degrade)

    os.makedirs(spill_dir, exist_ok=True)
    ledger = ShardLedger.open(
        os.path.join(os.fspath(spill_dir), LEDGER_NAME),
        descriptor,
        resume=resume,
        faults=faults,
    )

    if ctl is not None and not ctl.started:
        # The ledger, not the JSON checkpoint, resumes shard runs.
        ctl.resume = False
        ctl.begin(descriptor)

    def ledger_append(method, *args) -> None:
        """Best-effort durability: a failed ledger append (e.g. an
        injected ENOSPC) loses only the record — the partial result is
        already exact in memory, and a later resume simply recounts the
        unrecorded shard."""
        try:
            method(*args)
        except OSError as exc:
            obs.degradation("ledger_append", error=str(exc))

    n = graph.num_vertices
    totals = Counters()
    per_root_work = np.zeros(n, dtype=np.float64)
    per_root_memory = np.zeros(n, dtype=np.float64)
    total = 0
    all_row: list[int] | None = None if k is not None else [0, 0]
    degraded_from: str | None = None
    reg = obs.get_registry()

    def fold(shard, state: dict) -> None:
        nonlocal total, degraded_from
        lo, hi = shard.lo, shard.hi
        if all_row is not None:
            row = state.get("all_counts") or []
            while len(all_row) < len(row):
                all_row.append(0)
            for s, c in enumerate(row):
                if c:
                    all_row[s] += c
        else:
            total += int(state.get("count", 0))
        per_root_work[lo:hi] = state["per_root_work"]
        per_root_memory[lo:hi] = state["per_root_memory"]
        totals.merge(Counters.from_dict(state["counters"]))
        if state.get("degraded") and degraded_from is None:
            degraded_from = "shard"

    def run_shard(shard) -> dict:
        """Spill (if needed), verify, mmap, count — with bounded
        retries and quarantine-on-corruption."""
        rng = random.Random((int(retry_seed) << 16) ^ shard.index)
        last_error: Exception | None = None
        for attempt in range(max_retries + 1):
            if attempt:
                delay = _retry_delay(rng, attempt, retry_backoff)
                if reg.enabled:
                    reg.counter("shard_retries").inc()
                if delay > 0.0:
                    _sleep(delay)
            try:
                manifest = ledger.spilled.get(shard.index)
                if manifest is None or not _spill_files_present(
                    spill_dir, shard
                ):
                    manifest = write_shard_spill(
                        spill_dir, shard, graph, dag, faults=faults
                    )
                    ledger_append(ledger.record_spill, shard.index, manifest)
                    if reg.enabled:
                        reg.counter("shard_spilled_bytes").inc(
                            sum(m["bytes"] for m in manifest.values())
                        )
                sg, sdag = load_shard_slice(
                    spill_dir, shard, manifest, faults=faults
                )
                return _count_slice(
                    sg, sdag, shard, k=k, max_k=max_k,
                    structure=structure, kernel=kernel,
                    processes=processes,
                    chunks_per_process=chunks_per_process,
                    runtime=runtime,
                )
            except IOIntegrityError as exc:
                last_error = exc
                # The torn artifact was quarantined by the loader;
                # dropping the manifest forces a fresh spill whose
                # ledger record supersedes the corrupt one.
                ledger.spilled.pop(shard.index, None)
                if reg.enabled:
                    reg.counter("shard_quarantined").inc()
            except OSError as exc:
                last_error = exc
        if allow_degrade:
            # Last rung before failure: recount this shard exactly
            # from the resident in-memory graph (the result is still
            # exact — the flag records that spilling gave up).
            obs.degradation(
                "shard_fallback", shard=shard.index, error=str(last_error),
            )
            eng = SCTEngine(graph, dag, structure, kernel=kernel)
            batch = eng.count_roots(range(shard.lo, shard.hi), k, max_k=max_k)
            return {
                "lo": shard.lo,
                "hi": shard.hi,
                "count": batch.count,
                "all_counts": batch.all_counts,
                "counters": batch.counters.as_dict(),
                "per_root_work": list(batch.per_root_work),
                "per_root_memory": list(batch.per_root_memory),
                "degraded": True,
            }
        raise ShardError(
            f"shard {shard.index} (roots [{shard.lo}, {shard.hi})) failed "
            f"after {max_retries + 1} attempts: {last_error}"
        ) from last_error

    from contextlib import nullcontext

    pending = [s for s in plan.shards if s.index not in ledger.done]
    with obs.span(
        "shard.count" if k is not None else "shard.count_all",
        engine="sct-shard", shards=plan.num_shards,
        structure=structure, kernel=kernel_name,
    ), obs.phase("counting"), (
        ctl.guard() if ctl is not None else nullcontext()
    ):
        # Fold already-recorded shards first (resume path) — in shard
        # index order, so the fold order matches a fresh run.
        for shard in plan.shards:
            state = ledger.done.get(shard.index)
            if state is not None:
                fold(shard, state)
        for shard in pending:
            if ctl is not None:
                ctl.tick()
            state = run_shard(shard)
            if ctl is not None:
                # Meter BEFORE recording/folding: a shard is all-in or
                # not-at-all, so the ledger stays consistent.
                ctr = Counters.from_dict(state["counters"])
                ctl.charge_nodes(ctr.function_calls)
                ctl.note_memory(ctr.peak_subgraph_bytes)
            ledger_append(ledger.record_done, shard.index, state)
            fold(shard, state)
            if ctl is not None:
                ctl.complete_roots(shard.num_roots)
        if not ledger.complete:
            ledger_append(ledger.record_complete)

    if all_row is not None:
        while len(all_row) > 1 and all_row[-1] == 0:
            all_row.pop()
    return CountResult(
        count=None if k is None else total,
        all_counts=all_row,
        k=k,
        counters=totals,
        per_root_work=per_root_work,
        per_root_memory=per_root_memory,
        structure=structure,
        kernel=kernel_name,
        degraded_from=degraded_from,
    )
