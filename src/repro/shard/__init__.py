"""Out-of-core shard runtime: crash-safe spill, ledger, and executor.

The shard runtime counts a graph in vertex shards whose CSR slices are
spilled to mmap-backed ``.npy`` files under a spill directory, so the
counting working set is bounded by a configured watermark instead of
the resident arrays.  Per-root additivity of the SCT recursion makes
the partition exact (Finocchi et al., "Clique counting in MapReduce").

Modules
-------
``safeio``    atomic tmp+fsync+rename writes, content checksums, and
              the single seam where I/O faults are injected
``planner``   vertex-range shard planner generalizing the PR 5 chunk
              planner to a byte watermark
``spill``     per-shard CSR slice extraction and ``.npy`` spill files
``ledger``    append-only crash-safe JSON-lines ledger keyed by the
              shard-plan fingerprint; the resume mechanism
``executor``  the driver: spill → verify → count → fold, with bounded
              seeded retries, quarantine, and the degradation ladder

Public entry point: :func:`count_sharded` (re-exported here).
"""

from __future__ import annotations

__all__ = [
    "count_sharded",
    "plan_shards",
    "Shard",
    "ShardPlan",
    "ShardLedger",
]

_LAZY = {
    "count_sharded": "repro.shard.executor",
    "plan_shards": "repro.shard.planner",
    "Shard": "repro.shard.planner",
    "ShardPlan": "repro.shard.planner",
    "ShardLedger": "repro.shard.ledger",
}


def __getattr__(name: str):
    # Lazy exports (PEP 562): repro.runtime.checkpoint routes writes
    # through repro.shard.safeio, and the executor imports the runtime
    # package — eager imports here would close an import cycle.
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
