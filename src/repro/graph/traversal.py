"""Graph traversal utilities: BFS and connected components.

Supporting substrate for dataset validation (the analogs should be
dominated by one giant component like their originals) and for users
composing PivotScale with standard graph analytics.  Both kernels are
level-synchronous and vectorized — the frontier expansion gathers whole
neighbor ranges per step, the same style as the GAP reference code the
paper starts from.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["bfs_distances", "connected_components", "largest_component"]


def bfs_distances(g: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every vertex (-1 = unreachable)."""
    n = g.num_vertices
    if not 0 <= source < n:
        raise GraphFormatError(f"source {source} out of range [0, {n})")
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier in one shot.
        starts = g.indptr[frontier]
        ends = g.indptr[frontier + 1]
        total = int((ends - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [g.indices[s:e] for s, e in zip(starts, ends)]
        )
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        dist[fresh] = level
        frontier = fresh
    return dist


def connected_components(g: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are 0..c-1 by discovery)."""
    n = g.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for v in range(n):
        if labels[v] >= 0:
            continue
        # BFS flood fill from v.
        labels[v] = current
        frontier = np.array([v], dtype=np.int64)
        while frontier.size:
            nbrs = np.concatenate(
                [g.neighbors(int(u)) for u in frontier]
            ) if frontier.size else np.empty(0, dtype=np.int64)
            fresh = np.unique(nbrs[labels[nbrs] < 0]) if nbrs.size else nbrs
            labels[fresh] = current
            frontier = fresh
        current += 1
    return labels


def largest_component(g: CSRGraph) -> np.ndarray:
    """Vertex ids of the largest connected component (sorted)."""
    if g.num_vertices == 0:
        return np.empty(0, dtype=np.int64)
    labels = connected_components(g)
    counts = np.bincount(labels)
    return np.flatnonzero(labels == int(np.argmax(counts)))
