"""Graph substrate: CSR storage, builders, I/O, statistics, generators.

The whole library operates on :class:`~repro.graph.csr.CSRGraph`, a
compressed-sparse-row adjacency structure mirroring the representation
used by the GAP Benchmark Suite code the paper builds on.  Undirected
graphs store both edge directions; directionalized DAGs (see
:mod:`repro.ordering.directionalize`) store out-neighbors only.
"""

from repro.graph.csr import CSRGraph
from repro.graph.build import (
    from_edge_array,
    from_edge_list,
    from_adjacency,
    induced_subgraph,
)
from repro.graph.validate import validate_graph, GraphReport

__all__ = [
    "CSRGraph",
    "from_edge_array",
    "from_edge_list",
    "from_adjacency",
    "induced_subgraph",
    "validate_graph",
    "GraphReport",
]
