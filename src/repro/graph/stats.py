"""Graph statistics used by the ordering heuristic and the evaluation.

Implements the quantities the paper reports or relies on:

* degree distributions before and after directionalization (Fig. 3),
* Newman degree assortativity (the Sec. III-E motivation),
* the heuristic inputs ``a`` (highest neighbor degree of the hub) and the
  hub common-neighbor fraction (Table IV),
* triangle counts (used as a cross-check oracle for 3-clique counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.graph.csr import CSRGraph

__all__ = [
    "degree_histogram",
    "assortativity",
    "HeuristicInputs",
    "heuristic_inputs",
    "count_triangles",
    "common_neighbor_fraction",
]


def degree_histogram(g: CSRGraph) -> np.ndarray:
    """Histogram ``h[d] = #vertices of (out-)degree d``.

    Length is ``max_degree + 1``; used to compare DAG degree
    distributions between orderings (paper Fig. 3).
    """
    if g.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(g.degrees, minlength=g.max_degree + 1).astype(np.int64)


def assortativity(g: CSRGraph) -> float:
    """Newman degree-assortativity coefficient ``r`` of an undirected
    graph (Pearson correlation of endpoint degrees over edges).

    Returns ``0.0`` for degenerate graphs (no edges or zero variance).
    Social networks are assortative (``r > 0``), which is the property
    the Sec. III-E heuristic exploits.
    """
    edges = g.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    deg = g.degrees
    # Use both edge orientations so the measure is symmetric.
    x = np.concatenate((deg[edges[:, 0]], deg[edges[:, 1]])).astype(np.float64)
    y = np.concatenate((deg[edges[:, 1]], deg[edges[:, 0]])).astype(np.float64)
    vx = x.var()
    if vx == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / vx)


def common_neighbor_fraction(g: CSRGraph, u: int, v: int) -> float:
    """Fraction of ``u``'s neighbors that are also neighbors of ``v``.

    The paper measures "over 10% of the neighbors are common between the
    two vertices" for clique-rich graphs; we normalize by the smaller
    neighborhood so the measure is symmetric and bounded by 1.
    """
    nu = g.neighbors(u)
    nv = g.neighbors(v)
    if nu.size == 0 or nv.size == 0:
        return 0.0
    common = np.intersect1d(nu, nv, assume_unique=True).size
    return float(common) / float(min(nu.size, nv.size))


@dataclass(frozen=True)
class HeuristicInputs:
    """Measurements feeding the order-selecting heuristic (Table IV).

    Attributes
    ----------
    hub:
        Highest-degree vertex.
    hub_degree:
        Its degree.
    a:
        Highest degree among the hub's neighbors (the paper's ``a``).
    a_neighbor:
        The neighbor realizing ``a``.
    a_over_v:
        ``a / |V|`` where ``|V|`` may be rescaled by the caller for
        scaled-down dataset analogs.
    common_fraction:
        Common-neighbor fraction between the hub and ``a_neighbor``.
    num_vertices:
        The (possibly rescaled) vertex count used for ``a_over_v``.
    """

    hub: int
    hub_degree: int
    a: int
    a_neighbor: int
    a_over_v: float
    common_fraction: float
    num_vertices: float


def heuristic_inputs(
    g: CSRGraph, *, effective_num_vertices: float | None = None
) -> HeuristicInputs:
    """Compute the Sec. III-E heuristic inputs on an undirected graph.

    ``effective_num_vertices`` lets scaled-down analogs be judged at the
    paper-scale vertex count (see :mod:`repro.datasets`); by default the
    graph's own ``|V|`` is used.
    """
    n_eff = float(
        g.num_vertices if effective_num_vertices is None else effective_num_vertices
    )
    if g.num_vertices == 0 or g.num_edges == 0:
        return HeuristicInputs(0, 0, 0, 0, 0.0, 0.0, n_eff)
    hub = int(np.argmax(g.degrees))
    nbrs = g.neighbors(hub)
    nbr_degs = g.degrees[nbrs]
    j = int(np.argmax(nbr_degs))
    a_neighbor = int(nbrs[j])
    a = int(nbr_degs[j])
    frac = common_neighbor_fraction(g, hub, a_neighbor)
    reg = obs.get_registry()
    if reg.enabled:
        reg.counter("stats_heuristic_evals_total").inc()
        # One hub-neighborhood scan + one common-neighbor intersection:
        # the modeled cost the Sec. III-E heuristic pass charges.
        reg.counter("stats_heuristic_work_total").inc(
            int(nbrs.size) + int(g.degree(a_neighbor))
        )
    return HeuristicInputs(
        hub=hub,
        hub_degree=g.degree(hub),
        a=a,
        a_neighbor=a_neighbor,
        a_over_v=a / n_eff if n_eff else 0.0,
        common_fraction=frac,
        num_vertices=n_eff,
    )


def count_triangles(g: CSRGraph) -> int:
    """Exact triangle (3-clique) count via degree-ordered intersection.

    Serves as an independent oracle for ``k = 3`` clique counts in the
    test suite; ``O(m^{3/2})`` like the standard GAP `tc` kernel.
    """
    n = g.num_vertices
    if n == 0:
        return 0
    # Rank by (degree, id); direct edges from lower to higher rank.
    rank = np.lexsort((np.arange(n), g.degrees))
    pos = np.empty(n, dtype=np.int64)
    pos[rank] = np.arange(n)
    out: list[np.ndarray] = []
    for u in range(n):
        nbrs = g.neighbors(u)
        out.append(np.sort(nbrs[pos[nbrs] > pos[u]]))
    total = 0
    intersections = 0
    for u in range(n):
        for v in out[u]:
            total += np.intersect1d(out[u], out[int(v)], assume_unique=True).size
            intersections += 1
    reg = obs.get_registry()
    if reg.enabled:
        reg.counter("stats_triangle_scans_total").inc(intersections)
        reg.counter("stats_triangles_found_total").inc(int(total))
    return int(total)
