"""Interoperability: CSRGraph <-> networkx / scipy.sparse.

The library is self-contained (NumPy only), but downstream analyses
often live in networkx or scipy; these converters make the boundary
one line.  networkx and scipy are *optional* dependencies — imported
lazily so the core package works without them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "to_networkx",
    "from_networkx",
    "to_scipy_sparse",
    "from_scipy_sparse",
]


def to_networkx(g: CSRGraph):
    """Convert to ``networkx.Graph`` (or ``DiGraph`` for DAGs)."""
    import networkx as nx

    nxg = nx.DiGraph() if g.directed else nx.Graph()
    nxg.add_nodes_from(range(g.num_vertices))
    nxg.add_edges_from(g.edges())
    return nxg


def from_networkx(nxg) -> CSRGraph:
    """Convert an undirected ``networkx.Graph`` with integer node ids
    ``0..n-1`` (relabel first if needed)."""
    import networkx as nx

    if nxg.is_directed():
        raise GraphFormatError(
            "from_networkx expects an undirected graph; "
            "directionalize with repro.ordering instead"
        )
    n = nxg.number_of_nodes()
    nodes = set(nxg.nodes)
    if nodes != set(range(n)):
        raise GraphFormatError(
            "node ids must be 0..n-1; use networkx.convert_node_labels_"
            "to_integers first"
        )
    edges = np.array(list(nxg.edges), dtype=np.int64).reshape(-1, 2)
    return from_edge_array(edges, num_vertices=n)


def to_scipy_sparse(g: CSRGraph):
    """Convert to ``scipy.sparse.csr_array`` (0/1 adjacency)."""
    from scipy.sparse import csr_array

    n = g.num_vertices
    data = np.ones(g.num_directed_edges, dtype=np.int8)
    return csr_array((data, g.indices.copy(), g.indptr.copy()), shape=(n, n))


def from_scipy_sparse(mat) -> CSRGraph:
    """Convert a square scipy sparse matrix; nonzero pattern = edges.

    The pattern is symmetrized and self loops dropped, matching the
    library's normalization.
    """
    from scipy.sparse import coo_array

    coo = coo_array(mat)
    if coo.shape[0] != coo.shape[1]:
        raise GraphFormatError(f"adjacency must be square, got {coo.shape}")
    edges = np.column_stack((coo.row, coo.col)).astype(np.int64)
    return from_edge_array(edges, num_vertices=coo.shape[0])
