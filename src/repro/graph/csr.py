"""Compressed-sparse-row graph storage.

:class:`CSRGraph` is the single topology container used throughout the
library.  It is immutable after construction: every ordering and counting
routine works on read-only NumPy views, which keeps the hot kernels
allocation-free (the paper's Sec. V-B stresses allocation avoidance; in
NumPy the equivalent discipline is "views, not copies").
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable graph in compressed-sparse-row form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``u``'s neighbors live in
        ``indices[indptr[u]:indptr[u + 1]]``.
    indices:
        Neighbor array.  Each row must be strictly increasing (sorted,
        no duplicates) and contain no self loops.
    directed:
        ``False`` for an undirected (symmetric) graph storing both edge
        directions, ``True`` for a DAG storing out-neighbors only.
    validate:
        When ``True`` (default) the invariants above are checked; builders
        that construct rows correctly by construction pass ``False``.
    """

    __slots__ = ("indptr", "indices", "directed", "_degrees", "_fp")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        *,
        directed: bool = False,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphFormatError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphFormatError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {indices.size} entries)"
            )
        self.indptr = indptr
        self.indices = indices
        self.directed = bool(directed)
        self._degrees = np.diff(indptr)
        if validate:
            self._validate()
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._degrees.setflags(write=False)
        self._fp: str | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_vertices
        if np.any(self._degrees < 0):
            raise GraphFormatError("indptr must be non-decreasing")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise GraphFormatError("neighbor id out of range [0, n)")
        # Rows must be strictly increasing: sorted, deduplicated.
        for u in range(n):
            row = self.indices[self.indptr[u] : self.indptr[u + 1]]
            if row.size:
                if np.any(np.diff(row) <= 0):
                    raise GraphFormatError(
                        f"row {u} is not strictly increasing (unsorted or "
                        "duplicate neighbors)"
                    )
                lo = np.searchsorted(row, u)
                if lo < row.size and row[lo] == u:
                    raise GraphFormatError(f"self loop at vertex {u}")
        if not self.directed:
            # Symmetry: every (u, v) needs the reverse (v, u).
            src = np.repeat(np.arange(n, dtype=np.int64), self._degrees)
            fwd = src * n + self.indices
            rev = self.indices * n + src
            if not np.array_equal(np.sort(fwd), np.sort(rev)):
                raise GraphFormatError("undirected graph is not symmetric")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of edges: undirected edges for symmetric graphs,
        directed edges for DAGs."""
        if self.directed:
            return int(self.indices.size)
        return int(self.indices.size) // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.indices.size)

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree (out-degree for DAGs); read-only view."""
        return self._degrees

    @property
    def max_degree(self) -> int:
        """Maximum (out-)degree, 0 for the empty graph."""
        return int(self._degrees.max()) if self.num_vertices else 0

    @property
    def average_degree(self) -> float:
        """Average degree ``2|E|/|V|`` (``|E|/|V|`` for DAGs)."""
        if self.num_vertices == 0:
            return 0.0
        return self.indices.size / self.num_vertices

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def _compute_fp(self) -> str:
        import hashlib

        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.indptr).tobytes())
        h.update(np.ascontiguousarray(self.indices).tobytes())
        h.update(b"directed" if self.directed else b"undirected")
        return h.hexdigest()[:16]

    def fingerprint(self) -> str:
        """Stable structural identity (the checkpoint / forest-cache
        fingerprint — see :func:`repro.runtime.checkpoint.graph_fingerprint`).

        Memoized: the arrays are write-locked at construction, so the
        digest cannot go stale.  If someone force-unlocks and mutates
        the arrays anyway (``setflags(write=True)``), the memo is
        dropped and recomputed per call — a mutated graph can never be
        served a cached fingerprint (guarded by
        ``tests/test_dynamic.py``).
        """
        if self.indptr.flags.writeable or self.indices.flags.writeable:
            self._fp = None
            return self._compute_fp()
        if self._fp is None:
            self._fp = self._compute_fp()
        return self._fp

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbor (out-neighbor) view of vertex ``u``."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Degree (out-degree) of vertex ``u``."""
        return int(self._degrees[u])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the stored adjacency contains ``u -> v`` (binary
        search; ``O(log d(u))``)."""
        row = self.neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.size and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate stored edges.  For undirected graphs each edge is
        yielded once with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.neighbors(u):
                v = int(v)
                if self.directed or u < v:
                    yield (u, int(v))

    def edge_array(self) -> np.ndarray:
        """All stored edges as an ``(m, 2)`` array.  For undirected
        graphs, one row per edge with ``u < v``."""
        src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self._degrees
        )
        pairs = np.column_stack((src, self.indices))
        if not self.directed:
            pairs = pairs[pairs[:, 0] < pairs[:, 1]]
        return pairs

    def adjacency_sets(self) -> list[set[int]]:
        """Adjacency as a list of Python sets (testing / oracles only)."""
        return [set(map(int, self.neighbors(u))) for u in range(self.num_vertices)]

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "DAG" if self.directed else "undirected"
        return (
            f"CSRGraph({kind}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, max_deg={self.max_degree})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.directed == other.directed
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash(
            (self.directed, self.indptr.tobytes(), self.indices.tobytes())
        )
