"""Graph serialization: whitespace edge lists (SNAP style) and ``.npz``.

The paper's inputs are SNAP/Konect edge-list files; this module reads the
same format (``#`` and ``%`` comment lines, one ``u v`` pair per line)
and also provides a fast binary ``.npz`` round-trip for the synthetic
suite.
"""

from __future__ import annotations

import io
import os
from typing import TextIO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "save_npz",
    "load_npz",
]

#: Largest vertex id an int64 CSR can hold; larger tokens in an input
#: file are a format error (reported with the line number), not an
#: uncaught ``OverflowError`` deep inside NumPy.
_MAX_ID = int(np.iinfo(np.int64).max)


def read_edge_list(
    source: str | os.PathLike[str] | TextIO,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Read a whitespace edge list into an undirected :class:`CSRGraph`.

    Lines starting with ``#`` or ``%`` and blank lines are skipped.
    Each remaining line must contain at least two integer fields; extra
    fields (weights, timestamps) are ignored, matching how the paper's
    unweighted evaluation treats Konect files.

    Malformed input — non-integer tokens (including ``nan``/``inf``
    and floats), negative ids, or ids past the int64 range — raises
    :class:`~repro.errors.GraphFormatError` naming the offending line.
    """
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    pairs: list[tuple[int, int]] = []
    for lineno, line in enumerate(io.StringIO(text), start=1):
        line = line.strip()
        if not line or line[0] in "#%":
            continue
        fields = line.split()
        if len(fields) < 2:
            raise GraphFormatError(
                f"line {lineno}: expected 'u v', got {line!r}"
            )
        try:
            u, v = int(fields[0]), int(fields[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {lineno}: non-integer vertex id in {line!r}"
            ) from exc
        if u < 0 or v < 0:
            raise GraphFormatError(
                f"line {lineno}: negative vertex id in {line!r}"
            )
        if u > _MAX_ID or v > _MAX_ID:
            raise GraphFormatError(
                f"line {lineno}: vertex id exceeds int64 range in {line!r}"
            )
        pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(arr, num_vertices)


def write_edge_list(g: CSRGraph, path: str | os.PathLike[str]) -> None:
    """Write a graph as a whitespace edge list (one row per undirected
    edge, ``u < v``)."""
    edges = g.edge_array()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# repro edge list |V|={g.num_vertices} |E|={g.num_edges}\n")
        np.savetxt(fh, edges, fmt="%d")


def save_npz(g: CSRGraph, path: str | os.PathLike[str]) -> None:
    """Save a graph (undirected or DAG) to a compressed ``.npz`` file."""
    np.savez_compressed(
        path,
        indptr=g.indptr,
        indices=g.indices,
        directed=np.array(g.directed),
    )


def load_npz(path: str | os.PathLike[str]) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        try:
            return CSRGraph(
                data["indptr"],
                data["indices"],
                directed=bool(data["directed"]),
                validate=False,
            )
        except KeyError as exc:
            raise GraphFormatError(f"{path}: missing array {exc}") from exc


def write_metis(g: CSRGraph, path: str | os.PathLike[str]) -> None:
    """Write an undirected graph in METIS format.

    METIS is 1-indexed: the header line is ``n m`` and line ``i`` lists
    the neighbors of vertex ``i - 1``.
    """
    if g.directed:
        raise GraphFormatError("METIS format stores undirected graphs")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{g.num_vertices} {g.num_edges}\n")
        for u in range(g.num_vertices):
            fh.write(" ".join(str(int(v) + 1) for v in g.neighbors(u)))
            fh.write("\n")


def read_metis(source: str | os.PathLike[str] | TextIO) -> CSRGraph:
    """Read a METIS graph file (plain, unweighted format).

    Comment lines start with ``%``.  The header's edge count is
    validated against the adjacency lines.
    """
    if hasattr(source, "read"):
        text = source.read()  # type: ignore[union-attr]
    else:
        with open(source, "r", encoding="utf-8") as fh:
            text = fh.read()
    lines = [
        ln for ln in (raw.strip() for raw in text.splitlines())
        if ln and not ln.startswith("%")
    ]
    if not lines:
        raise GraphFormatError("empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphFormatError("METIS header must be 'n m [fmt]'")
    try:
        n, m = int(header[0]), int(header[1])
    except ValueError as exc:
        raise GraphFormatError("non-integer METIS header") from exc
    if len(lines) - 1 != n:
        raise GraphFormatError(
            f"METIS file has {len(lines) - 1} adjacency lines, header says {n}"
        )
    pairs: list[tuple[int, int]] = []
    for u, line in enumerate(lines[1:]):
        for field in line.split():
            try:
                v = int(field) - 1
            except ValueError as exc:
                raise GraphFormatError(
                    f"vertex {u}: non-integer neighbor {field!r}"
                ) from exc
            if not 0 <= v < n:
                raise GraphFormatError(
                    f"vertex {u}: neighbor {v + 1} out of range 1..{n}"
                )
            pairs.append((u, v))
    arr = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    g = from_edge_array(arr, num_vertices=n)
    if g.num_edges != m:
        raise GraphFormatError(
            f"METIS header claims {m} edges, adjacency encodes {g.num_edges}"
        )
    return g
