"""Builders that turn raw edge data into a clean :class:`CSRGraph`.

All builders normalize input the same way the paper's evaluation does
(Sec. VI-A): graphs are unweighted, symmetrized to be undirected, with
self loops and duplicate edges removed.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = [
    "from_edge_array",
    "from_edge_list",
    "from_adjacency",
    "induced_subgraph",
    "csr_from_sorted_edges",
]


def from_edge_array(
    edges: np.ndarray,
    num_vertices: int | None = None,
    *,
    symmetrize: bool = True,
) -> CSRGraph:
    """Build an undirected simple graph from an ``(m, 2)`` edge array.

    Self loops are dropped, duplicate edges (in either direction when
    ``symmetrize``) collapse to one undirected edge.

    Parameters
    ----------
    edges:
        Integer array of shape ``(m, 2)``.  May be empty.
    num_vertices:
        Vertex-set size; defaults to ``max id + 1``.
    symmetrize:
        Treat rows as undirected pairs (default, matches the paper).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(
            f"edge array must have shape (m, 2), got {edges.shape}"
        )
    if edges.size and edges.min() < 0:
        raise GraphFormatError("negative vertex id in edge array")
    n = int(edges.max()) + 1 if edges.size else 0
    if num_vertices is not None:
        if num_vertices < n:
            raise GraphFormatError(
                f"num_vertices={num_vertices} smaller than max id {n - 1}"
            )
        n = int(num_vertices)

    edges = edges[edges[:, 0] != edges[:, 1]]  # drop self loops
    if symmetrize:
        edges = np.concatenate((edges, edges[:, ::-1]), axis=0)
    if edges.size:
        keys = edges[:, 0] * n + edges[:, 1]
        keys = np.unique(keys)
        src = keys // n
        dst = keys % n
    else:
        src = dst = np.empty(0, dtype=np.int64)
    return csr_from_sorted_edges(src, dst, n, directed=not symmetrize)


def csr_from_sorted_edges(
    src: np.ndarray, dst: np.ndarray, n: int, *, directed: bool = False
) -> CSRGraph:
    """Assemble a CSR from deduplicated edge endpoints sorted by
    ``(src, dst)``.  Internal fast path used by the generators."""
    counts = np.bincount(src, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst, directed=directed, validate=False)


def from_edge_list(
    pairs: Iterable[tuple[int, int]], num_vertices: int | None = None
) -> CSRGraph:
    """Build an undirected simple graph from an iterable of pairs."""
    arr = np.array(list(pairs), dtype=np.int64)
    if arr.size == 0:
        arr = arr.reshape(0, 2)
    return from_edge_array(arr, num_vertices)


def from_adjacency(adj: Sequence[Iterable[int]]) -> CSRGraph:
    """Build an undirected simple graph from an adjacency sequence.

    ``adj[u]`` lists the neighbors of ``u``; missing reverse edges are
    added (symmetrization), so oracles can supply one direction only.
    """
    pairs: list[tuple[int, int]] = []
    for u, nbrs in enumerate(adj):
        for v in nbrs:
            pairs.append((u, int(v)))
    return from_edge_list(pairs, num_vertices=len(adj))


def induced_subgraph(g: CSRGraph, vertices: np.ndarray) -> CSRGraph:
    """Vertex-induced subgraph with vertices relabeled ``0..len-1`` in
    the order given.

    This is the *offline* induced-subgraph helper used by generators and
    tests; the counting phase uses its own per-root induction
    (:mod:`repro.counting.structures`) because that path is performance
    critical and instrumented.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size != np.unique(vertices).size:
        raise GraphFormatError("induced vertex set contains duplicates")
    remap = -np.ones(g.num_vertices, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size)
    pairs: list[tuple[int, int]] = []
    for new_u, u in enumerate(vertices):
        for v in g.neighbors(int(u)):
            nv = remap[v]
            if nv >= 0:
                pairs.append((new_u, int(nv)))
    src_dst = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    return from_edge_array(
        src_dst, num_vertices=vertices.size, symmetrize=not g.directed
    )
