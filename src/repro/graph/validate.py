"""Graph health report: invariants, structure summary, counting outlook.

``validate_graph`` packages the checks a user should run before feeding
a new dataset to the counting engines: CSR invariants (revalidated),
connectivity, degeneracy, degree skew, and the Sec. III-E heuristic
inputs — plus a coarse feasibility estimate for exact counting (the
degeneracy bounds the per-root subgraph size and hence the bitset
width).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.stats import assortativity, heuristic_inputs
from repro.graph.traversal import connected_components
from repro.ordering.core import core_numbers

__all__ = ["GraphReport", "validate_graph"]


@dataclass(frozen=True)
class GraphReport:
    """Summary statistics with human-readable warnings."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_degree: int
    degeneracy: int
    num_components: int
    largest_component_fraction: float
    isolated_vertices: int
    assortativity: float
    hub_common_fraction: float
    warnings: tuple[str, ...]

    def summary(self) -> str:
        lines = [
            f"|V| = {self.num_vertices:,}, |E| = {self.num_edges:,}, "
            f"avg degree {self.average_degree:.2f}, "
            f"max degree {self.max_degree:,}",
            f"degeneracy {self.degeneracy} "
            f"(per-root subgraphs are at most this large)",
            f"components: {self.num_components} "
            f"(largest holds {self.largest_component_fraction:.0%}; "
            f"{self.isolated_vertices} isolated vertices)",
            f"assortativity r = {self.assortativity:+.3f}, "
            f"hub common-neighbor fraction "
            f"{self.hub_common_fraction:.2f}",
        ]
        for w in self.warnings:
            lines.append(f"warning: {w}")
        return "\n".join(lines)


def validate_graph(g: CSRGraph) -> GraphReport:
    """Revalidate invariants and profile ``g`` for clique counting."""
    # Re-run the structural validation (builders skip it on fast paths).
    CSRGraph(g.indptr, g.indices, directed=g.directed, validate=True)
    n = g.num_vertices
    warnings: list[str] = []
    if n == 0:
        return GraphReport(0, 0, 0.0, 0, 0, 0, 0.0, 0, 0.0, 0.0, ())
    labels = connected_components(g)
    counts = np.bincount(labels)
    isolated = int((g.degrees == 0).sum())
    degeneracy = int(core_numbers(g).max()) if g.num_edges else 0
    hi = heuristic_inputs(g)
    if degeneracy > 512:
        warnings.append(
            f"degeneracy {degeneracy} is large; per-root bitsets exceed "
            "512 bits and counting may be slow in pure Python"
        )
    if counts.size > 1 and counts.max() < 0.5 * n:
        warnings.append(
            "no dominant connected component; consider analyzing "
            "components separately (repro.graph.traversal)"
        )
    if isolated > 0.2 * n:
        warnings.append(
            f"{isolated} isolated vertices ({isolated / n:.0%}) "
            "contribute nothing beyond k = 1"
        )
    return GraphReport(
        num_vertices=n,
        num_edges=g.num_edges,
        average_degree=g.average_degree,
        max_degree=g.max_degree,
        degeneracy=degeneracy,
        num_components=int(counts.size),
        largest_component_fraction=float(counts.max() / n),
        isolated_vertices=isolated,
        assortativity=assortativity(g),
        hub_common_fraction=hi.common_fraction,
        warnings=tuple(warnings),
    )
