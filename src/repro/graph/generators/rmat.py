"""R-MAT (recursive matrix) graph generator.

R-MAT is the Graph500 / GAP Benchmark Suite generator (the paper's
implementation starts from GAP reference code); it produces skewed,
community-structured graphs by recursively dropping edges into an
adjacency-matrix quadrant chosen with probabilities (a, b, c, d).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["rmat"]


def rmat(
    scale: int,
    edge_factor: float = 16.0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> CSRGraph:
    """Generate an undirected R-MAT graph with ``2**scale`` vertices.

    Parameters
    ----------
    scale:
        log2 of the vertex count (Graph500 convention).
    edge_factor:
        Attempted edges per vertex (duplicates collapse, so the realized
        count is lower; Graph500 defaults to 16).
    a, b, c:
        Quadrant probabilities; ``d = 1 - a - b - c`` must be >= 0.
        Defaults are the Graph500/GAP values (0.57, 0.19, 0.19).
    """
    if scale < 0:
        raise GraphFormatError("scale must be >= 0")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("quadrant probabilities must be >= 0 and sum <= 1")
    n = 1 << scale
    m = int(edge_factor * n)
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _bit in range(scale):
        r = rng.random(m)
        # Quadrant choice: [a | b / c | d] over (row half, col half).
        row_hi = r >= a + b
        col_hi = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        src = (src << 1) | row_hi
        dst = (dst << 1) | col_hi
    edges = np.column_stack((src, dst))
    return from_edge_array(edges, num_vertices=n)
