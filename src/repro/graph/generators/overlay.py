"""Composing edge sets into one graph and shaping hub assortativity.

The dataset analogs are built by overlaying a sparse background (Chung-Lu
or R-MAT) with planted cliques, then optionally wiring the hubs so the
Sec. III-E heuristic inputs (``a/|V|``, common-neighbor fraction) land on
the paper's side of its thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["overlay", "attach_assortative_hub"]


def overlay(
    n: int, *edge_sets: np.ndarray | CSRGraph, seed: int | None = None
) -> CSRGraph:
    """Union of edge sets over a shared vertex range ``[0, n)``.

    Accepts raw ``(m, 2)`` arrays or graphs; duplicates collapse.
    """
    chunks: list[np.ndarray] = []
    for item in edge_sets:
        if isinstance(item, CSRGraph):
            chunks.append(item.edge_array())
        else:
            arr = np.asarray(item, dtype=np.int64)
            if arr.size == 0:
                continue
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise GraphFormatError("edge sets must have shape (m, 2)")
            chunks.append(arr)
    if not chunks:
        return from_edge_array(np.empty((0, 2), dtype=np.int64), num_vertices=n)
    return from_edge_array(np.concatenate(chunks, axis=0), num_vertices=n)


def attach_assortative_hub(
    g: CSRGraph,
    *,
    assortative: bool,
    hub_extra: int = 0,
    common_targets: float = 0.0,
    seed: int = 0,
) -> CSRGraph:
    """Rewire the two highest-degree vertices to control the heuristic.

    ``assortative=True`` connects the top-two-degree vertices and gives
    them ``common_targets`` (a fraction of the smaller hub's degree)
    shared neighbors — pushing both heuristic signals high, like the
    paper's clique-rich graphs (As-Skitter, Orkut).  ``False`` instead
    surrounds the hub with ``hub_extra`` fresh leaf-only neighbors so its
    best neighbor has low degree and no overlap — the Baidu/Friendster
    character (``a/|V| ~ 0``, common fraction 0).
    """
    n = g.num_vertices
    if n < 2:
        return g
    order = np.argsort(g.degrees)[::-1]
    hub, second = int(order[0]), int(order[1])
    extra: list[tuple[int, int]] = []
    if assortative:
        extra.append((hub, second))
        hub_nbrs = g.neighbors(hub)
        want = int(round(common_targets * min(g.degree(hub), g.degree(second) + 1)))
        rng = np.random.default_rng(seed)
        if want and hub_nbrs.size:
            shared = rng.choice(hub_nbrs, size=min(want, hub_nbrs.size), replace=False)
            extra.extend((second, int(v)) for v in shared if int(v) != second)
        base_edges = [g.edge_array()] + (
            [np.array(extra, dtype=np.int64)] if extra else []
        )
        return overlay(n, *base_edges)
    # Disassortative: append hub_extra brand-new degree-1 neighbors so the
    # hub's degree dwarfs every neighbor's degree.
    if hub_extra <= 0:
        return g
    new_ids = np.arange(n, n + hub_extra, dtype=np.int64)
    leaf_edges = np.column_stack((np.full(hub_extra, hub, dtype=np.int64), new_ids))
    return overlay(n + hub_extra, g.edge_array(), leaf_edges)
