"""Chung-Lu random graphs with power-law expected degrees.

The Chung-Lu model connects ``u ~ v`` with probability proportional to
``w_u * w_v``, reproducing a prescribed (e.g. power-law) degree sequence
in expectation — the degree-tail character shared by all eight graphs in
the paper's suite (Table I).

The sampler is the standard O(m) "ball dropping" variant: endpoints are
drawn independently with probability proportional to weight, duplicates
and self loops are cleaned by the builder.  This slightly perturbs the
realized degree sequence but preserves the tail exponent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = ["power_law_degrees", "chung_lu"]


def power_law_degrees(
    n: int,
    exponent: float = 2.5,
    min_degree: float = 1.0,
    max_degree: float | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Sample ``n`` expected degrees from a bounded Pareto distribution.

    ``P(d) ~ d^{-exponent}`` on ``[min_degree, max_degree]`` via inverse
    transform sampling; ``max_degree`` defaults to ``sqrt(n) *
    min_degree`` which keeps the Chung-Lu edge probabilities below 1.
    """
    if n < 0:
        raise GraphFormatError("n must be >= 0")
    if exponent <= 1.0:
        raise GraphFormatError("power-law exponent must be > 1")
    if max_degree is None:
        max_degree = max(min_degree, np.sqrt(n) * min_degree)
    if max_degree < min_degree:
        raise GraphFormatError("max_degree must be >= min_degree")
    rng = np.random.default_rng(seed)
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = min_degree**a, max_degree**a
    return (lo + u * (hi - lo)) ** (1.0 / a)


def chung_lu(
    weights: np.ndarray, seed: int = 0, *, num_edges: int | None = None
) -> CSRGraph:
    """Sample a Chung-Lu graph for the given expected-degree weights.

    Parameters
    ----------
    weights:
        Non-negative expected degrees; ``len(weights)`` vertices.
    num_edges:
        Number of undirected edges to attempt; defaults to
        ``sum(weights) / 2`` (the expectation of the exact model).
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise GraphFormatError("weights must be a 1-D array")
    if weights.size and weights.min() < 0:
        raise GraphFormatError("weights must be non-negative")
    n = weights.size
    total = weights.sum()
    if n == 0 or total <= 0:
        return from_edge_array(np.empty((0, 2), dtype=np.int64), num_vertices=n)
    m = int(total / 2) if num_edges is None else int(num_edges)
    rng = np.random.default_rng(seed)
    p = weights / total
    src = rng.choice(n, size=m, p=p)
    dst = rng.choice(n, size=m, p=p)
    edges = np.column_stack((src, dst)).astype(np.int64)
    return from_edge_array(edges, num_vertices=n)
