"""Synthetic graph generators.

The paper evaluates on eight SNAP/Konect graphs that cannot be shipped or
downloaded here, so :mod:`repro.datasets` composes these generators into
deterministic scaled-down analogs with matched topology character:
power-law degree tails (Chung-Lu / R-MAT), planted clique structure, and
controllable hub assortativity.
"""

from repro.graph.generators.classic import (
    complete_graph,
    empty_graph,
    path_graph,
    cycle_graph,
    star_graph,
    turan_graph,
    erdos_renyi,
    complete_multipartite,
)
from repro.graph.generators.chung_lu import chung_lu, power_law_degrees
from repro.graph.generators.rmat import rmat
from repro.graph.generators.planted import planted_cliques
from repro.graph.generators.overlay import overlay, attach_assortative_hub

__all__ = [
    "complete_graph",
    "empty_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "turan_graph",
    "erdos_renyi",
    "complete_multipartite",
    "chung_lu",
    "power_law_degrees",
    "rmat",
    "planted_cliques",
    "overlay",
    "attach_assortative_hub",
]
