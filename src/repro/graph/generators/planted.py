"""Planted-clique edge sets.

Real social networks contain "pockets of density in an otherwise sparse
graph" (paper Sec. III-E); the dataset analogs reproduce that structure
explicitly by planting cliques of prescribed sizes over a sparse random
background.  Planting is what gives each analog the k_max character of
its paper counterpart (e.g. the LiveJournal analog's clique-richness and
the Web-Edu analog's single huge clique).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphFormatError

__all__ = ["planted_cliques", "clique_edges"]


def clique_edges(members: np.ndarray) -> np.ndarray:
    """All ``C(len, 2)`` undirected edges among ``members``."""
    members = np.asarray(members, dtype=np.int64)
    iu = np.triu_indices(members.size, k=1)
    return np.column_stack((members[iu[0]], members[iu[1]]))


def planted_cliques(
    n: int,
    sizes: Sequence[int],
    seed: int = 0,
    *,
    overlap: float = 0.0,
    pool: np.ndarray | None = None,
) -> np.ndarray:
    """Edge array of cliques planted on vertices ``[0, n)``.

    Parameters
    ----------
    n:
        Vertex-id range to plant into.
    sizes:
        One planted clique per entry.
    overlap:
        Fraction of each clique's members drawn from previously planted
        members (0 = disjoint where possible, 1 = maximally nested).
        Overlapping plants create the combinatorial clique explosion of
        the LiveJournal analog: overlapping n-cliques share many
        sub-cliques, which multiplies counts super-linearly.
    pool:
        Optional subset of vertex ids to plant into (e.g. hub vertices to
        raise assortativity); defaults to all of ``[0, n)``.
    """
    if any(s < 1 for s in sizes):
        raise GraphFormatError("clique sizes must be >= 1")
    if not 0.0 <= overlap <= 1.0:
        raise GraphFormatError("overlap must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    candidates = np.arange(n, dtype=np.int64) if pool is None else np.asarray(
        pool, dtype=np.int64
    )
    if sizes and max(sizes) > candidates.size:
        raise GraphFormatError("clique size exceeds candidate pool")
    used: list[int] = []
    chunks: list[np.ndarray] = []
    for size in sizes:
        take_old = min(int(round(overlap * size)), len(used), size)
        members = []
        if take_old:
            members.extend(
                rng.choice(np.array(used, dtype=np.int64), take_old, replace=False)
            )
        fresh_needed = size - take_old
        fresh_pool = np.setdiff1d(
            candidates, np.array(members, dtype=np.int64), assume_unique=False
        )
        if fresh_needed > fresh_pool.size:
            raise GraphFormatError("candidate pool exhausted while planting")
        members.extend(rng.choice(fresh_pool, fresh_needed, replace=False))
        members_arr = np.array(members, dtype=np.int64)
        used.extend(int(v) for v in members_arr)
        if size >= 2:
            chunks.append(clique_edges(members_arr))
    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(chunks, axis=0)
