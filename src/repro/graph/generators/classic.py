"""Deterministic classic graphs: oracles and worst/best cases for tests.

These generators exist mainly to give the test suite graphs whose clique
counts are known in closed form (complete, Turán, multipartite, paths).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.build import from_edge_array
from repro.graph.csr import CSRGraph

__all__ = [
    "empty_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "turan_graph",
    "complete_multipartite",
    "erdos_renyi",
]


def empty_graph(n: int) -> CSRGraph:
    """``n`` isolated vertices."""
    if n < 0:
        raise GraphFormatError("n must be >= 0")
    return from_edge_array(np.empty((0, 2), dtype=np.int64), num_vertices=n)


def complete_graph(n: int) -> CSRGraph:
    """K_n: the number of k-cliques is exactly C(n, k)."""
    if n < 0:
        raise GraphFormatError("n must be >= 0")
    iu = np.triu_indices(n, k=1)
    edges = np.column_stack(iu).astype(np.int64)
    return from_edge_array(edges, num_vertices=n)


def path_graph(n: int) -> CSRGraph:
    """P_n: n-1 edges, no cliques beyond edges."""
    if n < 0:
        raise GraphFormatError("n must be >= 0")
    if n < 2:
        return empty_graph(n)
    src = np.arange(n - 1, dtype=np.int64)
    return from_edge_array(np.column_stack((src, src + 1)), num_vertices=n)


def cycle_graph(n: int) -> CSRGraph:
    """C_n (n >= 3): one triangle iff n == 3."""
    if n < 3:
        raise GraphFormatError("cycle requires n >= 3")
    src = np.arange(n, dtype=np.int64)
    dst = (src + 1) % n
    return from_edge_array(np.column_stack((src, dst)), num_vertices=n)


def star_graph(n_leaves: int) -> CSRGraph:
    """Star: vertex 0 connected to ``n_leaves`` leaves; no triangles."""
    if n_leaves < 0:
        raise GraphFormatError("n_leaves must be >= 0")
    if n_leaves == 0:
        return empty_graph(1)
    leaves = np.arange(1, n_leaves + 1, dtype=np.int64)
    edges = np.column_stack((np.zeros_like(leaves), leaves))
    return from_edge_array(edges, num_vertices=n_leaves + 1)


def complete_multipartite(part_sizes: list[int]) -> CSRGraph:
    """Complete multipartite graph: k-clique count is the elementary
    symmetric polynomial e_k of the part sizes."""
    if any(s < 0 for s in part_sizes):
        raise GraphFormatError("part sizes must be >= 0")
    bounds = np.concatenate(([0], np.cumsum(part_sizes))).astype(np.int64)
    n = int(bounds[-1])
    part_of = np.empty(n, dtype=np.int64)
    for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        part_of[lo:hi] = i
    iu = np.triu_indices(n, k=1)
    edges = np.column_stack(iu).astype(np.int64)
    edges = edges[part_of[edges[:, 0]] != part_of[edges[:, 1]]]
    return from_edge_array(edges, num_vertices=n)


def turan_graph(n: int, r: int) -> CSRGraph:
    """Turán graph T(n, r): the densest K_{r+1}-free graph."""
    if r < 1 or n < 0:
        raise GraphFormatError("turan requires n >= 0, r >= 1")
    base, extra = divmod(n, r)
    sizes = [base + (1 if i < extra else 0) for i in range(r)]
    return complete_multipartite(sizes)


def erdos_renyi(n: int, p: float, seed: int = 0) -> CSRGraph:
    """G(n, p) via vectorized upper-triangular coin flips."""
    if not 0.0 <= p <= 1.0:
        raise GraphFormatError("p must lie in [0, 1]")
    if n < 0:
        raise GraphFormatError("n must be >= 0")
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    edges = np.column_stack((iu[0][mask], iu[1][mask])).astype(np.int64)
    return from_edge_array(edges, num_vertices=n)
