"""Applications of clique counting (the paper's Sec. I motivation).

Community detection and dense-subgraph discovery are the canonical
consumers of k-clique machinery: clique-percolation communities [1-3]
and k-clique densest subgraphs [4] both sit directly on top of the
listing/counting engines in :mod:`repro.counting`.
"""

from repro.apps.cliquecore import kclique_core_numbers, kclique_core_subgraph
from repro.apps.cpm import k_clique_communities
from repro.apps.densest import (
    DensestResult,
    kclique_densest_subgraph,
    kclique_density,
)

__all__ = [
    "k_clique_communities",
    "kclique_core_numbers",
    "kclique_core_subgraph",
    "kclique_densest_subgraph",
    "kclique_density",
    "DensestResult",
]
