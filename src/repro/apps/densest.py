"""k-clique densest subgraph via greedy peeling (paper ref [4]).

The k-clique density of a vertex set ``S`` is ``(#k-cliques inside S) /
|S|``; for ``k = 2`` this is the classic densest-subgraph objective.
The standard 1/k-approximation peels the vertex with the fewest
incident k-cliques, recomputing per-vertex counts as the graph shrinks
(Fang et al. / Tsourakakis-style k-clique peeling), and returns the
densest prefix seen.

Per-vertex counts come from the SCT engine's per-vertex extension —
this application is exactly why the paper's closing section mentions
per-vertex counting as a valuable by-product.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.counting.pervertex import per_vertex_counts
from repro.counting.sct import count_kcliques
from repro.errors import CountingError
from repro.graph.build import induced_subgraph
from repro.graph.csr import CSRGraph
from repro.ordering.core import core_ordering

__all__ = ["DensestResult", "kclique_density", "kclique_densest_subgraph"]


@dataclass(frozen=True)
class DensestResult:
    """Outcome of the peeling approximation.

    ``density`` is exact (a Fraction): cliques inside / vertices.
    """

    vertices: tuple[int, ...]
    density: Fraction
    k: int
    clique_count: int


def kclique_density(g: CSRGraph, vertices: np.ndarray, k: int) -> Fraction:
    """Exact k-clique density of the subgraph induced by ``vertices``."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return Fraction(0)
    sub = induced_subgraph(g, vertices)
    c = count_kcliques(sub, k, core_ordering(sub)).count or 0
    return Fraction(c, int(vertices.size))


def kclique_densest_subgraph(
    g: CSRGraph,
    k: int,
    *,
    recompute_every: int = 1,
) -> DensestResult:
    """Greedy k-clique peeling; returns the densest prefix.

    Parameters
    ----------
    recompute_every:
        Recompute per-vertex counts after this many peels (1 = exact
        greedy; larger values trade approximation quality for speed on
        big graphs).
    """
    if k < 2:
        raise CountingError("densest subgraph needs k >= 2")
    if recompute_every < 1:
        raise CountingError("recompute_every must be >= 1")
    current = np.arange(g.num_vertices, dtype=np.int64)
    best_vertices = current.copy()
    best_density = kclique_density(g, current, k)
    sub = g
    while current.size > k:
        ordering = core_ordering(sub)
        per = per_vertex_counts(sub, k, ordering)
        if sum(per) == 0:
            break  # no k-cliques left anywhere
        order = np.argsort(np.array([float(c) for c in per]))
        drop = set(order[:recompute_every].tolist())
        keep_local = np.array(
            [i for i in range(sub.num_vertices) if i not in drop],
            dtype=np.int64,
        )
        current = current[keep_local]
        sub = induced_subgraph(sub, keep_local)
        total = count_kcliques(sub, k, core_ordering(sub)).count or 0
        if current.size:
            density = Fraction(total, int(current.size))
            if density > best_density:
                best_density = density
                best_vertices = current.copy()
    total_best = int(best_density * len(best_vertices))
    return DensestResult(
        vertices=tuple(int(v) for v in best_vertices),
        density=best_density,
        k=k,
        clique_count=total_best,
    )
