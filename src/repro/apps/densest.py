"""k-clique densest subgraph via greedy peeling (paper ref [4]).

The k-clique density of a vertex set ``S`` is ``(#k-cliques inside S) /
|S|``; for ``k = 2`` this is the classic densest-subgraph objective.
The standard 1/k-approximation peels the vertex with the fewest
incident k-cliques, recomputing per-vertex counts as the graph shrinks
(Fang et al. / Tsourakakis-style k-clique peeling), and returns the
densest prefix seen.

Per-vertex counts come from the SCT engine's per-vertex extension —
this application is exactly why the paper's closing section mentions
per-vertex counting as a valuable by-product.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.counting.pervertex import per_vertex_counts
from repro.counting.sct import count_kcliques
from repro.errors import CountingError
from repro.graph.build import induced_subgraph
from repro.graph.csr import CSRGraph
from repro.ordering.core import core_ordering

__all__ = ["DensestResult", "kclique_density", "kclique_densest_subgraph"]


@dataclass(frozen=True)
class DensestResult:
    """Outcome of the peeling approximation.

    ``density`` is exact (a Fraction): cliques inside / vertices.
    """

    vertices: tuple[int, ...]
    density: Fraction
    k: int
    clique_count: int


def kclique_density(g: CSRGraph, vertices: np.ndarray, k: int) -> Fraction:
    """Exact k-clique density of the subgraph induced by ``vertices``."""
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return Fraction(0)
    sub = induced_subgraph(g, vertices)
    c = count_kcliques(sub, k, core_ordering(sub)).count or 0
    return Fraction(c, int(vertices.size))


def kclique_densest_subgraph(
    g: CSRGraph,
    k: int,
    *,
    recompute_every: int = 1,
    use_forest: bool = True,
) -> DensestResult:
    """Greedy k-clique peeling; returns the densest prefix.

    Parameters
    ----------
    recompute_every:
        Recompute per-vertex counts after this many peels (1 = exact
        greedy; larger values trade approximation quality for speed on
        big graphs).
    use_forest:
        Build one materialized :class:`~repro.counting.forest.SCTForest`
        per iteration's subgraph and answer both the total count and
        the per-vertex counts from it (default), instead of running two
        separate SCT traversals per peel.  Results are identical — the
        forest serves the exact same counts.
    """
    if k < 2:
        raise CountingError("densest subgraph needs k >= 2")
    if recompute_every < 1:
        raise CountingError("recompute_every must be >= 1")
    current = np.arange(g.num_vertices, dtype=np.int64)
    best_vertices = current.copy()
    best_density: Fraction | None = None
    sub = g
    while True:
        # One traversal per iteration: total count (this prefix's
        # density) and per-vertex counts (the peel decision) both come
        # from the same materialized tree.
        if use_forest and current.size:
            from repro.counting.forest import build_forest

            forest = build_forest(sub, core_ordering(sub))
            total = forest.count(k)
            per = forest.per_vertex(k) if current.size > k else None
        else:
            total = (
                count_kcliques(sub, k, core_ordering(sub)).count or 0
                if current.size
                else 0
            )
            per = (
                per_vertex_counts(sub, k, core_ordering(sub))
                if current.size > k
                else None
            )
        if current.size:
            density = Fraction(total, int(current.size))
            if best_density is None or density > best_density:
                best_density = density
                best_vertices = current.copy()
        if per is None or sum(per) == 0:
            break  # peeled to <= k vertices, or no k-cliques left
        order = np.argsort(np.array([float(c) for c in per]))
        drop = set(order[:recompute_every].tolist())
        keep_local = np.array(
            [i for i in range(sub.num_vertices) if i not in drop],
            dtype=np.int64,
        )
        current = current[keep_local]
        sub = induced_subgraph(sub, keep_local)
    if best_density is None:
        best_density = Fraction(0)
    total_best = int(best_density * len(best_vertices))
    return DensestResult(
        vertices=tuple(int(v) for v in best_vertices),
        density=best_density,
        k=k,
        clique_count=total_best,
    )
