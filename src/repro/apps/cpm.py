"""Clique-percolation community detection (Palla et al., paper ref [2]).

A k-clique community is a maximal union of k-cliques connected through
adjacency: two k-cliques are adjacent when they share ``k - 1``
vertices.  This is the "k-clique community detection" the paper's
introduction cites as a primary application ([1]-[3]).

Implementation: list the k-cliques (:mod:`repro.counting.listing`),
union-find over (k-1)-subsets — two cliques sharing a (k-1)-subset are
adjacent, and conversely adjacency implies a shared (k-1)-subset — then
report each community as its vertex union.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.counting.listing import list_kcliques
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering

__all__ = ["k_clique_communities"]


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def k_clique_communities(
    g: CSRGraph,
    k: int,
    ordering: Ordering | np.ndarray | None = None,
    *,
    max_cliques: int | None = None,
) -> list[set[int]]:
    """All k-clique communities of ``g`` (each a vertex set), largest
    first.

    ``max_cliques`` bounds the listing phase (communities from a
    truncated listing are a valid partial answer on huge inputs).
    """
    if k < 2:
        raise CountingError("k-clique communities need k >= 2")
    cliques = [
        c for c in list_kcliques(g, k, ordering, limit=max_cliques)
    ]
    if not cliques:
        return []
    uf = _UnionFind()
    # Key cliques by their (k-1)-subsets: sharing a subset <=> adjacent.
    owner: dict[tuple[int, ...], int] = {}
    for idx, clique in enumerate(cliques):
        uf.find(idx)
        for sub in combinations(clique, k - 1):
            prev = owner.setdefault(sub, idx)
            if prev != idx:
                uf.union(prev, idx)
    groups: dict[int, set[int]] = {}
    for idx, clique in enumerate(cliques):
        groups.setdefault(uf.find(idx), set()).update(clique)
    return sorted(groups.values(), key=len, reverse=True)
