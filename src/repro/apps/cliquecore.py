"""k-clique core decomposition (clique peeling).

The Arb-Count paper this reproduction baselines against is titled
"Parallel clique counting *and peeling* algorithms": peeling by
per-vertex k-clique counts generalizes the k-core decomposition (which
is the ``k = 2`` case, peeling by degree) and yields the k-clique core
number of every vertex — the largest ``c`` such that the vertex
belongs to a subgraph where everyone participates in at least ``c``
k-cliques.  The max-core prefix is Tsourakakis's 1/k-approximation of
the k-clique densest subgraph.

Exact algorithm: repeatedly remove a vertex with the minimum current
k-clique count.  When ``v`` is removed, only the cliques *through*
``v`` disappear, so the update enumerates k-cliques containing ``v``
(listing restricted to v's current neighborhood) and decrements their
other members — the standard peeling-with-local-updates scheme.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.counting.pervertex import per_vertex_counts
from repro.errors import CountingError
from repro.graph.csr import CSRGraph
from repro.ordering.core import core_ordering
from repro.runtime.controller import RunController

__all__ = ["kclique_core_numbers", "kclique_core_subgraph"]


def kclique_core_numbers(
    g: CSRGraph, k: int, controller: RunController | None = None
) -> list[int]:
    """Per-vertex k-clique core numbers (exact peel).

    ``k = 2`` reproduces the classic core decomposition.  Intended for
    the analog-scale graphs this repository works at: the peel is
    ``O(n)`` rounds with local clique re-enumeration per removal.
    ``controller`` budgets the counting phase (the dominant cost) via
    :func:`~repro.counting.pervertex.per_vertex_counts`.
    """
    if k < 2:
        raise CountingError("k-clique cores need k >= 2")
    n = g.num_vertices
    adj = [set(map(int, g.neighbors(v))) for v in range(n)]
    counts = [
        int(c)
        for c in per_vertex_counts(
            g, k, core_ordering(g), controller=controller
        )
    ]
    core = [0] * n
    alive = [True] * n
    heap = [(counts[v], v) for v in range(n)]
    heapq.heapify(heap)
    running_max = 0
    removed = 0
    while removed < n:
        c, v = heapq.heappop(heap)
        if not alive[v] or c != counts[v]:
            continue  # stale heap entry
        running_max = max(running_max, counts[v])
        core[v] = running_max
        alive[v] = False
        removed += 1
        # Remove the cliques through v: enumerate k-cliques containing v
        # inside its remaining neighborhood.
        if counts[v] > 0:
            nbrs = [u for u in adj[v] if alive[u]]
            for members in _cliques_through(adj, alive, nbrs, k - 1):
                for u in members:
                    counts[u] -= 1
                    heapq.heappush(heap, (counts[u], u))
        for u in adj[v]:
            adj[u].discard(v)
        adj[v].clear()
    return core


def _cliques_through(adj, alive, nbrs: list[int], size: int):
    """Yield all ``size``-cliques among ``nbrs`` (alive vertices)."""
    nbrs = sorted(nbrs)
    if size == 1:
        for u in nbrs:
            yield (u,)
        return

    def rec(start: int, chosen: list[int]):
        if len(chosen) == size:
            yield tuple(chosen)
            return
        for i in range(start, len(nbrs)):
            u = nbrs[i]
            if all(u in adj[w] for w in chosen):
                chosen.append(u)
                yield from rec(i + 1, chosen)
                chosen.pop()

    yield from rec(0, [])


def kclique_core_subgraph(g: CSRGraph, k: int) -> tuple[np.ndarray, int]:
    """Vertices of the maximum k-clique core and its core number.

    The returned set is the densest-peel prefix — Tsourakakis's
    1/k-approximate k-clique densest subgraph.
    """
    core = kclique_core_numbers(g, k)
    top = max(core) if core else 0
    members = np.flatnonzero(np.array(core) == top)
    return members, top
