"""Nestable span tracing with a JSON-lines wire format.

A *span* is one timed region of the pipeline — a counting run, an
ordering computation, a forest build, a degradation retry — carrying
structured attributes (phase, engine, structure, kernel, graph
fingerprint) and an automatic parent link, so a trace reconstructs the
run as a tree rather than a flat log.  The paper's evaluation
attributes cost to phases (ordering vs. counting, Figs. 6-8) and
structures (Fig. 9); spans are how a serving deployment gets the same
attribution per request.

Wire format — one JSON object per line, two record types::

    {"type": "span", "id": 2, "parent": 1, "name": "count",
     "attrs": {"engine": "sct", "kernel": "bigint"},
     "t0": 0.01, "t1": 0.42}
    {"type": "event", "span": 2, "name": "degradation",
     "attrs": {"rung": "kernel_fallback"}, "t": 0.17}

Span records are emitted at span *exit* (children before parents), so a
truncated trace loses only the spans that never finished — exactly the
crash-forensics property a line-oriented format exists for.
:func:`parse_trace_lines` rebuilds the tree and rejects malformed input
with line-numbered :class:`~repro.errors.TraceFormatError`\\ s,
mirroring the graph loader's ``GraphFormatError`` discipline.

The disabled fast path hands out a single shared :data:`NOOP_SPAN`
whose enter/exit/event do nothing — no allocation, no clock read.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.errors import TraceFormatError

__all__ = [
    "Tracer",
    "Span",
    "SpanNode",
    "NOOP_SPAN",
    "parse_trace_lines",
    "parse_trace_file",
    "render_spans",
]


class _NoopSpan:
    """Shared do-nothing span for the disabled path (reentrant)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One live traced region; use via ``with tracer.span(...)``."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs",
                 "t0", "t1")

    def __init__(self, tracer: "Tracer", span_id: int,
                 parent_id: int | None, name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.t1 = 0.0

    def __enter__(self) -> "Span":
        self.t0 = self.tracer.clock()
        self.tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.t1 = self.tracer.clock()
        stack = self.tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._emit({
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "t0": self.t0,
            "t1": self.t1,
        })

    def event(self, name: str, **attrs) -> None:
        """Attach a point-in-time event to this span."""
        self.tracer._emit({
            "type": "event",
            "span": self.span_id,
            "name": name,
            "attrs": attrs,
            "t": self.tracer.clock(),
        })


class Tracer:
    """Collects span/event records in memory and/or streams them.

    Parameters
    ----------
    enabled:
        Disabled tracers return :data:`NOOP_SPAN` from :meth:`span`.
    sink:
        Optional text stream; each record is written as one JSON line
        as it is emitted (the CLI's ``--trace-out``).
    clock:
        Monotonic-clock callable (injectable for deterministic tests).
    """

    def __init__(
        self,
        enabled: bool = True,
        sink: IO[str] | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.enabled = bool(enabled)
        self.sink = sink
        self.clock = clock
        self.records: list[dict] = []
        self._stack: list[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs):
        """Open a nestable span (parent inferred from the active stack)."""
        if not self.enabled:
            return NOOP_SPAN
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return Span(self, span_id, parent, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Emit an event on the innermost active span (or parentless)."""
        if not self.enabled:
            return
        self._emit({
            "type": "event",
            "span": self._stack[-1] if self._stack else None,
            "name": name,
            "attrs": attrs,
            "t": self.clock(),
        })

    def _emit(self, record: dict) -> None:
        self.records.append(record)
        if self.sink is not None:
            self.sink.write(json.dumps(record) + "\n")

    def reset(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._next_id = 1

    def dump_lines(self) -> list[str]:
        """The collected records as JSON lines (tests / late writes)."""
        return [json.dumps(r) for r in self.records]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} records={len(self.records)}>"


# ----------------------------------------------------------------------
# parsing — JSON lines back into span trees
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One reconstructed span with its children and events."""

    span_id: int
    name: str
    attrs: dict
    t0: float
    t1: float
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


def _fail(lineno: int, msg: str) -> TraceFormatError:
    return TraceFormatError(f"trace line {lineno}: {msg}")


def parse_trace_lines(lines: Iterable[str]) -> list[SpanNode]:
    """Rebuild span trees from JSON-lines records.

    Children appear before parents on the wire (exit-order emission),
    so the tree is stitched in a second pass.  Raises
    :class:`~repro.errors.TraceFormatError` with the 1-based line
    number for malformed JSON, missing/ill-typed fields, duplicate span
    ids, or unknown record types.  Events for spans that never closed
    (truncated trace) are tolerated and dropped; spans whose parent
    record is missing become roots.
    """
    nodes: dict[int, SpanNode] = {}
    parents: dict[int, int | None] = {}
    pending_events: list[tuple[int | None, dict]] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise _fail(lineno, f"invalid JSON ({exc.msg})") from exc
        if not isinstance(rec, dict):
            raise _fail(lineno, "record is not a JSON object")
        rtype = rec.get("type")
        if rtype == "span":
            try:
                span_id = int(rec["id"])
                name = rec["name"]
                t0 = float(rec["t0"])
                t1 = float(rec["t1"])
            except (KeyError, TypeError, ValueError) as exc:
                raise _fail(lineno, f"bad span record ({exc!r})") from exc
            if not isinstance(name, str):
                raise _fail(lineno, "span name must be a string")
            attrs = rec.get("attrs", {})
            if not isinstance(attrs, dict):
                raise _fail(lineno, "span attrs must be an object")
            parent = rec.get("parent")
            if parent is not None:
                try:
                    parent = int(parent)
                except (TypeError, ValueError) as exc:
                    raise _fail(lineno, "span parent must be an id") from exc
            if span_id in nodes:
                raise _fail(lineno, f"duplicate span id {span_id}")
            nodes[span_id] = SpanNode(span_id, name, attrs, t0, t1)
            parents[span_id] = parent
        elif rtype == "event":
            attrs = rec.get("attrs", {})
            name = rec.get("name")
            if not isinstance(name, str):
                raise _fail(lineno, "event name must be a string")
            if not isinstance(attrs, dict):
                raise _fail(lineno, "event attrs must be an object")
            span_ref = rec.get("span")
            if span_ref is not None:
                try:
                    span_ref = int(span_ref)
                except (TypeError, ValueError) as exc:
                    raise _fail(lineno, "event span must be an id") from exc
            pending_events.append(
                (span_ref, {"name": name, "attrs": attrs,
                            "t": rec.get("t")})
            )
        else:
            raise _fail(lineno, f"unknown record type {rtype!r}")
    for span_ref, ev in pending_events:
        if span_ref is not None and span_ref in nodes:
            nodes[span_ref].events.append(ev)
    roots: list[SpanNode] = []
    for span_id, node in nodes.items():
        parent = parents[span_id]
        if parent is not None and parent in nodes:
            nodes[parent].children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda c: (c.t0, c.span_id))
    roots.sort(key=lambda c: (c.t0, c.span_id))
    return roots


def parse_trace_file(path) -> list[SpanNode]:
    """Parse a ``--trace-out`` file back into span trees."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_trace_lines(fh)


def render_spans(roots: list[SpanNode], *, indent: str = "  ") -> str:
    """ASCII rendering of span trees — the one report path both the
    CLI trace and the simulated-machine timeline adapter go through
    (see :func:`repro.obs.adapter.timeline_to_spans`)."""
    lines: list[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
        lines.append(
            f"{indent * depth}{node.name} [{node.duration:.6f}s]"
            + (f" {attrs}" if attrs else "")
        )
        for ev in node.events:
            ev_attrs = " ".join(
                f"{k}={v}" for k, v in sorted(ev["attrs"].items())
            )
            lines.append(
                f"{indent * (depth + 1)}! {ev['name']}"
                + (f" {ev_attrs}" if ev_attrs else "")
            )
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
