"""repro.obs — the unified observability layer.

One subsystem replaces the scattered per-module accounting that grew
through PRs 1-3: a process-wide :class:`MetricsRegistry` of exact work
counters (node visits, pivot selections, kernel intersect/popcount
calls, cache hits/misses, checkpoint writes, degradation events), a
nestable :class:`Tracer` emitting structured JSON-lines spans (phase,
engine, structure, kernel, graph fingerprint, parent span), and an
opt-in :class:`Profiler` for per-phase wall/CPU time and peak modeled
memory.  Every engine (SCT, Pivoter configuration, enumeration,
hybrid), all three structures, both kernel backends, every ordering,
the forest build/query path and the
:class:`~repro.runtime.RunController` publish through the module-level
hooks below; ``EXPERIMENTS.md`` cells and ``BENCH_*.json`` gates trace
back to the catalog in ``docs/observability.md``.

**Disabled is free.**  Everything here is off by default; the hooks
cost one boolean check per run or per root (never per recursion node),
the shared :data:`~repro.obs.tracing.NOOP_SPAN` makes ``span()``
allocation-free, and kernel instrumentation is a wrapper that simply
is not installed.  ``tests/test_obs.py`` holds all counts bit-identical
on vs. off on both kernels; ``benchmarks/bench_obs.py`` gates the
disabled overhead at <5%.

Typical use::

    from repro import obs

    with obs.collecting() as reg:           # fresh registry, enabled
        result = count_cliques(g, 8)
    reg.total("engine_nodes_visited_total")  # == counters.function_calls

or globally (the CLI's ``--metrics-out`` / ``--trace-out`` /
``--profile`` flags do exactly this)::

    obs.enable(trace=True)
    ... run ...
    obs.get_registry().write_json("metrics.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import IO

from repro.obs.adapter import timeline_to_records, timeline_to_spans
from repro.obs.kernels import InstrumentedKernel
from repro.obs.profiling import PhaseProfile, Profiler
from repro.obs.registry import (
    COUNTER_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRIC,
)
from repro.obs.tracing import (
    NOOP_SPAN,
    SpanNode,
    Tracer,
    parse_trace_file,
    parse_trace_lines,
    render_spans,
)

__all__ = [
    # registry / tracing / profiling types
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "NOOP_METRIC",
    "Tracer", "SpanNode", "NOOP_SPAN",
    "Profiler", "PhaseProfile",
    "InstrumentedKernel",
    "COUNTER_METRICS",
    # trace format helpers
    "parse_trace_lines", "parse_trace_file", "render_spans",
    "timeline_to_spans", "timeline_to_records",
    # global state
    "get_registry", "set_registry", "get_tracer", "set_tracer",
    "get_profiler", "enabled", "enable", "disable", "collecting",
    # hooks the layers call
    "span", "event", "record_counters", "record_run", "record_ordering",
    "degradation", "checkpoint_write", "instrument_kernel", "phase",
    "note_memory",
]

# ----------------------------------------------------------------------
# global state (one registry / tracer / profiler per process by default)
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry(enabled=False)
_TRACER = Tracer(enabled=False)
_PROFILER = Profiler(enabled=False)


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process registry; returns the previous one."""
    global _REGISTRY
    prev, _REGISTRY = _REGISTRY, registry
    return prev


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process tracer; returns the previous one."""
    global _TRACER
    prev, _TRACER = _TRACER, tracer
    return prev


def get_profiler() -> Profiler:
    return _PROFILER


def enabled() -> bool:
    """Whether metrics collection is on (the master switch the engine
    hooks consult)."""
    return _REGISTRY.enabled


def enable(
    *, trace: bool = False, trace_sink: IO[str] | None = None,
    profile: bool = False,
) -> None:
    """Turn on metrics (and optionally tracing / profiling) globally."""
    _REGISTRY.enable()
    if trace or trace_sink is not None:
        _TRACER.enabled = True
        if trace_sink is not None:
            _TRACER.sink = trace_sink
    if profile:
        _PROFILER.enable()


def disable() -> None:
    """Turn every observability channel off (the shipped default)."""
    _REGISTRY.disable()
    _TRACER.enabled = False
    _TRACER.sink = None
    _PROFILER.disable()


@contextmanager
def collecting(*, trace: bool = False, profile: bool = False):
    """Scoped observability: install a fresh enabled registry (and
    tracer/profiler when asked), restore the previous state on exit.

    The test suites' workhorse — measurements are isolated per
    ``with`` block and the global default stays disabled.
    """
    prev_reg = set_registry(MetricsRegistry(enabled=True))
    prev_tr = set_tracer(Tracer(enabled=trace))
    global _PROFILER
    prev_prof = _PROFILER
    _PROFILER = Profiler(enabled=profile)
    try:
        yield _REGISTRY
    finally:
        set_registry(prev_reg)
        set_tracer(prev_tr)
        _PROFILER = prev_prof


# ----------------------------------------------------------------------
# hooks — what the engines / kernels / runtime actually call
# ----------------------------------------------------------------------
def span(name: str, **attrs):
    """A tracer span (the shared no-op singleton when tracing is off)."""
    return _TRACER.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """A point-in-time trace event on the innermost active span."""
    _TRACER.event(name, **attrs)


def record_counters(counters, **labels) -> None:
    """Fold a run's :class:`~repro.counting.counters.Counters` into the
    canonical ``engine_*`` registry metrics."""
    _REGISTRY.record_counters(counters, **labels)


def record_run(counters, *, engine: str, structure: str, kernel: str,
               roots: int = 0) -> None:
    """Per-run publish point for the counting engines: canonical
    counters plus the root-task count (so ``engine_roots_total``
    divides work into the scheduler model's task units)."""
    if not _REGISTRY.enabled:
        return
    record_counters(counters, engine=engine, structure=structure,
                    kernel=kernel)
    if roots:
        _REGISTRY.counter("engine_roots_total", engine=engine,
                          structure=structure, kernel=kernel).inc(roots)


def record_ordering(ordering) -> None:
    """Publish one computed :class:`~repro.ordering.base.Ordering`'s
    work profile (name, rounds, parallel/sequential work units)."""
    if not _REGISTRY.enabled:
        return
    cost = ordering.cost
    name = ordering.name
    _REGISTRY.counter("ordering_computed_total", ordering=name).inc()
    _REGISTRY.counter("ordering_rounds_total", ordering=name).inc(
        cost.num_rounds
    )
    if cost.total_work:
        _REGISTRY.counter("ordering_work_units_total", ordering=name).inc(
            cost.total_work
        )
    if cost.sequential:
        _REGISTRY.counter(
            "ordering_sequential_work_total", ordering=name
        ).inc(cost.sequential)
    _REGISTRY.gauge("ordering_num_vertices", ordering=name).set(
        ordering.num_vertices
    )


def degradation(rung: str, **attrs) -> None:
    """One degradation-ladder event (kernel_fallback, sampling,
    enumeration_retry, member_spill): counter + trace event."""
    if _REGISTRY.enabled:
        _REGISTRY.counter("runtime_degradations_total", rung=rung).inc()
    _TRACER.event("degradation", rung=rung, **attrs)


def checkpoint_write(*, complete: bool = False) -> None:
    """One checkpoint save (the controller's autosave/abort/final
    writes)."""
    if _REGISTRY.enabled:
        _REGISTRY.counter(
            "runtime_checkpoint_writes_total",
            kind="complete" if complete else "progress",
        ).inc()
    _TRACER.event("checkpoint", complete=complete)


def instrument_kernel(kernel):
    """Wrap a resolved kernel with call counting when metrics are on
    (identity when off, or when it is already wrapped)."""
    if not _REGISTRY.enabled:
        return kernel
    if isinstance(kernel, InstrumentedKernel):
        return kernel
    return InstrumentedKernel(kernel, _REGISTRY)


def phase(name: str):
    """A profiler phase context (no-op unless profiling is enabled)."""
    return _PROFILER.phase(name)


def note_memory(peak_bytes: int | float) -> None:
    """Report a peak modeled footprint to the active profile phases."""
    _PROFILER.note_memory(peak_bytes)
