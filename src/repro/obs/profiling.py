"""Opt-in phase profiling: wall/CPU time and peak modeled memory.

The paper's evaluation separates ordering time from counting time
(Figs. 6-8) and reports peak process RSS per structure (Sec. VI-D).
This module gives every pipeline run the same breakdown: a
:class:`Profiler` collects one :class:`PhaseProfile` per named phase —
wall seconds (``time.perf_counter``), CPU seconds
(``time.process_time``) and the peak *modeled* memory the phase
reported through :meth:`Profiler.note_memory` (fed by the existing
:mod:`repro.perfmodel.memory` machinery and the engines'
``peak_subgraph_bytes`` counters, so profile memory and the paper's
Sec. VI-D model agree by construction).

Profiling is opt-in (the CLI's ``--profile``) and entirely separate
from the metrics registry's enabled flag: metrics are cheap exact
integers, clock reads are not, so each is gated independently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["PhaseProfile", "Profiler"]


@dataclass
class PhaseProfile:
    """Measured cost of one named phase."""

    name: str
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    peak_memory_bytes: int = 0
    calls: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "calls": self.calls,
        }


class Profiler:
    """Accumulates per-phase wall/CPU time and peak modeled memory.

    Phases with the same name accumulate (a k-sweep's eight counting
    phases fold into one row).  Nested phases each pay their own clock
    reads; the outer phase's wall time includes the inner's, exactly
    like the paper's total-vs-phase accounting.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.phases: dict[str, PhaseProfile] = {}
        self._active: list[str] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.phases.clear()
        self._active.clear()

    @contextmanager
    def phase(self, name: str):
        """Time a phase; no-op (and no clock read) when disabled."""
        if not self.enabled:
            yield self
            return
        prof = self.phases.get(name)
        if prof is None:
            prof = self.phases[name] = PhaseProfile(name)
        w0 = time.perf_counter()
        c0 = time.process_time()
        self._active.append(name)
        try:
            yield self
        finally:
            self._active.pop()
            prof.wall_seconds += time.perf_counter() - w0
            prof.cpu_seconds += time.process_time() - c0
            prof.calls += 1

    def note_memory(self, peak_bytes: int | float) -> None:
        """Report a peak modeled footprint to every active phase."""
        if not self.enabled:
            return
        peak = int(peak_bytes)
        for name in self._active:
            prof = self.phases[name]
            if peak > prof.peak_memory_bytes:
                prof.peak_memory_bytes = peak

    def summary_lines(self) -> list[str]:
        """Printable per-phase breakdown (the ``--profile`` output)."""
        if not self.phases:
            return ["profile: no phases recorded"]
        lines = [f"{'phase':20s} {'wall(s)':>10s} {'cpu(s)':>10s} "
                 f"{'peak mem':>12s} {'calls':>6s}"]
        for prof in self.phases.values():
            lines.append(
                f"{prof.name:20s} {prof.wall_seconds:>10.4f} "
                f"{prof.cpu_seconds:>10.4f} "
                f"{prof.peak_memory_bytes:>12,d} {prof.calls:>6d}"
            )
        return lines

    def as_dict(self) -> dict:
        return {"phases": [p.as_dict() for p in self.phases.values()]}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Profiler {state} phases={sorted(self.phases)}>"
