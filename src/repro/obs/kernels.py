"""Kernel-call instrumentation — exact fused-op counts per backend.

Wraps a :class:`~repro.kernels.BitsetKernel` and counts every API-level
call (``intersect``, ``intersect_count``, ``count_rows``,
``pivot_select``, ``intersect_count_sweep``, ``alloc_rows``) into
``kernel_calls_total{kernel=..., op=...}`` registry counters.  Counts
are taken at the kernel *contract* boundary, not inside backends, so
the big-int and word-array backends — which do wildly different work
per call — report bit-identical call counts on the same DAG: the
engines' control flow is backend-invariant by construction, and the
invariant suite (``tests/test_obs.py``) holds them to it.

The wrapper exists only while observability is enabled:
:func:`repro.kernels.resolve_kernel` consults
:func:`repro.obs.instrument_kernel` and returns the raw backend when
metrics are off, so the disabled hot path pays nothing — the same
install-only-when-wanted pattern as
:class:`~repro.runtime.faults.FaultyKernel`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.base import BitsetKernel, PivotChoice

__all__ = ["InstrumentedKernel"]


class InstrumentedKernel(BitsetKernel):
    """Count every kernel API call into a metrics registry.

    ``name`` mirrors the wrapped backend so structure/engine logic
    (degradation's ``kernel.name == "bigint"`` checks, result fields)
    cannot tell an instrumented kernel from a bare one.
    """

    def __init__(self, inner: BitsetKernel, registry) -> None:
        self.inner = inner
        self.name = inner.name
        c = registry.counter
        k = inner.name
        self._c_alloc = c("kernel_calls_total", kernel=k, op="alloc_rows")
        self._c_set = c("kernel_calls_total", kernel=k, op="set_row")
        self._c_load = c("kernel_calls_total", kernel=k, op="load_rows")
        self._c_int = c("kernel_calls_total", kernel=k, op="intersect")
        self._c_ic = c("kernel_calls_total", kernel=k, op="intersect_count")
        self._c_cr = c("kernel_calls_total", kernel=k, op="count_rows")
        self._c_ps = c("kernel_calls_total", kernel=k, op="pivot_select")
        self._c_sweep = c(
            "kernel_calls_total", kernel=k, op="intersect_count_sweep"
        )
        self._c_pss = c(
            "kernel_calls_total", kernel=k, op="pivot_select_sweep"
        )
        self._c_exp = c("kernel_calls_total", kernel=k, op="expand_children")

    @property
    def frontier(self) -> bool:
        return self.inner.frontier

    # ---------------------------------------------------------- storage
    def alloc_rows(self, d: int) -> Any:
        self._c_alloc.inc()
        return self.inner.alloc_rows(d)

    def set_row(self, rows: Any, i: int, bits: np.ndarray) -> None:
        self._c_set.inc()
        self.inner.set_row(rows, i, bits)

    def load_rows(
        self, rows: Any, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        self._c_load.inc()
        self.inner.load_rows(rows, indptr, indices)

    def row_int(self, rows: Any, i: int) -> int:
        return self.inner.row_int(rows, i)

    def num_rows(self, rows: Any) -> int:
        return self.inner.num_rows(rows)

    def row_accessor(self, rows: Any):
        return self.inner.row_accessor(rows)

    def mask_int(self, rows: Any, mask: Any) -> int:
        return self.inner.mask_int(rows, mask)

    def to_native(self, rows: Any, mask: int) -> Any:
        return self.inner.to_native(rows, mask)

    def sweep_entry(self, rows: Any, batch: Any, j: int, i: int):
        return self.inner.sweep_entry(rows, batch, j, i)

    # ----------------------------------------------------- fused kernels
    def intersect(self, rows: Any, i: int, mask: int) -> int:
        self._c_int.inc()
        return self.inner.intersect(rows, i, mask)

    def intersect_count(self, rows: Any, i: int, mask: int) -> tuple[int, int]:
        self._c_ic.inc()
        return self.inner.intersect_count(rows, i, mask)

    def count_rows(self, rows: Any, mask: int) -> Sequence[int]:
        self._c_cr.inc()
        return self.inner.count_rows(rows, mask)

    def intersect_count_sweep(self, rows: Any, mask: Any):
        self._c_sweep.inc()
        return self.inner.intersect_count_sweep(rows, mask)

    def pivot_select(self, rows: Any, P: int, pc: int) -> PivotChoice:
        self._c_ps.inc()
        return self.inner.pivot_select(rows, P, pc)

    def pivot_select_sweep(
        self, rows: Any, masks: Sequence[Any], pcs: Sequence[int]
    ):
        self._c_pss.inc()
        return self.inner.pivot_select_sweep(rows, masks, pcs)

    def expand_children(self, rows: Any, P: Any, best: int, best_row: Any):
        self._c_exp.inc()
        return self.inner.expand_children(rows, P, best, best_row)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InstrumentedKernel {self.inner!r}>"
