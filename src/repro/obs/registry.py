"""Process-wide metrics registry — the single source of truth for work.

Every engine, kernel, ordering, forest and runtime path in this
codebase does *countable* work: recursion nodes visited, fused
intersect/popcount calls, cache hits, checkpoint writes, degradation
events.  Before this module each layer kept its own ad-hoc tally (or
none); the registry unifies them behind three metric kinds:

* :class:`Counter` — monotone exact totals (Python ints stay ints, so
  astronomically large work counts never round);
* :class:`Gauge` — last-or-max observed values (peak memory, deepest
  recursion);
* :class:`Histogram` — power-of-two bucketed distributions (per-root
  work, span durations).

Metrics are identified by ``(name, labels)``; labels are sorted
key=value pairs, so ``counter("kernel_calls_total", kernel="bigint",
op="intersect_count")`` and the same call with labels swapped hit the
same cell.  The registry is **disabled by default**: a disabled
registry hands out shared no-op metric singletons, so the counting hot
paths pay (at most) one ``enabled`` check per run or per root — never
per recursion node.  The invariant suite (``tests/test_obs.py``) holds
counts bit-identical with the registry on vs. off, and
``benchmarks/bench_obs.py`` gates the disabled-path overhead at <5%.

The canonical metric catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_METRIC",
    "COUNTER_METRICS",
]

#: Canonical mapping of :class:`~repro.counting.counters.Counters`
#: fields onto registry counter names — the one place the old private
#: accounting vocabulary and the metric catalog are tied together.
COUNTER_METRICS: dict[str, str] = {
    "function_calls": "engine_nodes_visited_total",
    "leaves": "engine_leaves_total",
    "early_terminations": "engine_early_exits_total",
    "subgraph_builds": "engine_subgraph_builds_total",
    "set_op_words": "engine_set_op_words_total",
    "index_lookups": "engine_index_lookups_total",
    "build_words": "engine_build_words_total",
}

#: Counters fields published as max-gauges rather than sums.
COUNTER_GAUGES: dict[str, str] = {
    "max_depth": "engine_max_depth",
    "peak_subgraph_bytes": "engine_peak_subgraph_bytes",
}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing exact total."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """A point-in-time value with a max-tracking convenience."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value: int | float = 0

    def set(self, v: int | float) -> None:
        self.value = v

    def max(self, v: int | float) -> None:
        if v > self.value:
            self.value = v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Power-of-two bucketed distribution with exact count/sum/min/max.

    ``buckets[i]`` counts observations ``x`` with
    ``2**(i-1) <= x < 2**i`` (bucket 0 holds ``x < 1``) — enough
    resolution for work distributions without per-observation storage.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum: int | float = 0
        self.min: int | float | None = None
        self.max: int | float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, v: int | float) -> None:
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        b = max(0, int(v).bit_length()) if v >= 1 else 0
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Histogram {self.name}{dict(self.labels)} "
            f"n={self.count} mean={self.mean:.3g}>"
        )


class _NoopMetric:
    """Shared do-nothing stand-in handed out by a disabled registry.

    One singleton serves as counter, gauge and histogram: every method
    is a constant no-op, so instrument-then-check-enabled code can
    fetch handles unconditionally.
    """

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    def set(self, v: int | float) -> None:
        pass

    def max(self, v: int | float) -> None:
        pass

    def observe(self, v: int | float) -> None:
        pass


NOOP_METRIC = _NoopMetric()


class MetricsRegistry:
    """Counters, gauges and histograms keyed by ``(name, labels)``.

    Parameters
    ----------
    enabled:
        A disabled registry returns :data:`NOOP_METRIC` from every
        accessor and records nothing; flipping :meth:`enable` /
        :meth:`disable` at run boundaries is the supported pattern
        (handles are fetched per run, never cached across runs).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded metric (keeps the enabled flag)."""
        self._metrics.clear()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict):
        if not self.enabled:
            return NOOP_METRIC
        key = (cls.__name__, name, _label_key(labels))
        m = self._metrics.get(key)
        if m is None:
            m = cls(name, _label_key(labels))
            self._metrics[key] = m
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def value(self, name: str, **labels) -> int | float:
        """The exact value of one counter/gauge cell (0 if absent)."""
        for kind in ("Counter", "Gauge"):
            m = self._metrics.get((kind, name, _label_key(labels)))
            if m is not None:
                return m.value
        return 0

    def total(self, name: str) -> int | float:
        """Sum of a counter across every label combination."""
        return sum(
            m.value
            for (kind, n, _), m in self._metrics.items()
            if kind == "Counter" and n == name
        )

    def collect(self) -> Iterator[Counter | Gauge | Histogram]:
        """Every live metric, in insertion order."""
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # bridges from the legacy per-module accounting
    # ------------------------------------------------------------------
    def record_counters(self, counters, **labels) -> None:
        """Fold one :class:`~repro.counting.counters.Counters` into the
        canonical ``engine_*`` metrics (the engines' per-run publish
        point; see :data:`COUNTER_METRICS`)."""
        if not self.enabled:
            return
        d = counters.as_dict()
        for field, metric in COUNTER_METRICS.items():
            v = d[field]
            if v:
                self.counter(metric, **labels).inc(v)
        for field, metric in COUNTER_GAUGES.items():
            self.gauge(metric, **labels).max(d[field])
        self.counter("engine_runs_total", **labels).inc()
        self.counter("engine_work_units_total", **labels).inc(d["work"])

    def merge_snapshot(self, snap: dict) -> None:
        """Fold an :meth:`as_dict` snapshot from another registry into
        this one — the parallel runtime's metrics bridge.

        Worker processes record into their own per-task registries and
        ship ``as_dict()`` back with each chunk result; the parent
        merges them here so ``engine_*``/``kernel_*`` counter totals
        stay exact under parallelism.  Counters add, gauges keep the
        max (every mergeable gauge in the catalog is a peak), and
        histograms fold count/sum/min/max and bucket tallies.  No-op
        when this registry is disabled.
        """
        if not self.enabled:
            return
        for entry in snap.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(entry["value"])
        for entry in snap.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).max(entry["value"])
        for entry in snap.get("histograms", ()):
            h = self.histogram(entry["name"], **entry["labels"])
            h.count += entry["count"]
            h.sum += entry["sum"]
            if entry["min"] is not None:
                if h.min is None or entry["min"] < h.min:
                    h.min = entry["min"]
            if entry["max"] is not None:
                if h.max is None or entry["max"] > h.max:
                    h.max = entry["max"]
            for b, n in entry.get("buckets", {}).items():
                b = int(b)
                h.buckets[b] = h.buckets.get(b, 0) + n

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready snapshot: ``{kind: [{name, labels, ...}]}``."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for m in self.collect():
            entry: dict = {"name": m.name, "labels": dict(m.labels)}
            if isinstance(m, Histogram):
                entry.update(
                    count=m.count, sum=m.sum, min=m.min, max=m.max,
                    mean=m.mean,
                    buckets={str(k): v for k, v in sorted(m.buckets.items())},
                )
                out["histograms"].append(entry)
            elif isinstance(m, Gauge):
                entry["value"] = m.value
                out["gauges"].append(entry)
            else:
                entry["value"] = m.value
                out["counters"].append(entry)
        return out

    def write_json(self, path: str | os.PathLike[str]) -> None:
        """Dump the snapshot to ``path`` (the CLI's ``--metrics-out``)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return f"<MetricsRegistry {state} metrics={len(self._metrics)}>"
