"""Adapters rendering other trace kinds through the span report path.

The repo already has a second notion of "trace": the simulated
64-thread machine's per-thread Gantt timeline
(:class:`repro.parallel.trace.Timeline`, reproducing the paper's
Sec. IV load-balance measurement).  This module maps a timeline onto
the same :class:`~repro.obs.tracing.SpanNode` trees the JSON-lines
tracer parses into — one root span per thread, one child span per
executed chunk — so both trace kinds render through one
:func:`~repro.obs.tracing.render_spans` report path, and timelines can
be serialized in the identical JSON-lines wire format
(:func:`timeline_to_records`).
"""

from __future__ import annotations

from repro.obs.tracing import SpanNode

__all__ = ["timeline_to_spans", "timeline_to_records"]


def timeline_to_spans(timeline) -> list[SpanNode]:
    """One :class:`SpanNode` root per thread, chunk spans as children.

    Root spans run from 0 to the thread's last chunk end (its busy
    horizon); attributes carry the machine-model vocabulary (thread,
    task range) so a rendered timeline reads like a rendered run trace.
    """
    per_thread: dict[int, list] = {t: [] for t in range(timeline.threads)}
    for s in timeline.spans:
        per_thread[s.thread].append(s)
    roots: list[SpanNode] = []
    next_id = 1
    for t in range(timeline.threads):
        chunks = sorted(per_thread[t], key=lambda s: s.start)
        end = chunks[-1].end if chunks else 0.0
        root = SpanNode(
            span_id=next_id,
            name=f"thread-{t}",
            attrs={"thread": t, "chunks": len(chunks)},
            t0=0.0,
            t1=end,
        )
        next_id += 1
        for s in chunks:
            root.children.append(SpanNode(
                span_id=next_id,
                name="chunk",
                attrs={"first_task": s.first_task, "last_task": s.last_task},
                t0=s.start,
                t1=s.end,
            ))
            next_id += 1
        roots.append(root)
    return roots


def timeline_to_records(timeline) -> list[dict]:
    """The same mapping as JSON-lines-ready record dicts (round-trips
    through :func:`~repro.obs.tracing.parse_trace_lines`)."""
    records: list[dict] = []

    def emit(node: SpanNode, parent: int | None) -> None:
        for child in node.children:
            emit(child, node.span_id)
        records.append({
            "type": "span",
            "id": node.span_id,
            "parent": parent,
            "name": node.name,
            "attrs": node.attrs,
            "t0": node.t0,
            "t1": node.t1,
        })

    for root in timeline_to_spans(timeline):
        emit(root, None)
    return records
