"""repro — a Python reproduction of PivotScale (Lonkar & Beamer, IPDPS'25).

PivotScale is a scalable, pivoting-based exact k-clique counter.  This
package implements the full system from scratch — orderings, the SCT
pivot recursion, the three subgraph structures, the selection
heuristic, baselines — plus the machine model that reproduces the
paper's parallel-scaling evaluation (see DESIGN.md for the simulation
substitutions).

Quick start::

    from repro import count_cliques
    from repro.datasets import load

    result = count_cliques(load("orkut"), k=8)
    print(result.count, result.ordering.name, result.total_model_seconds)
"""

from repro.core import (
    CliqueCountResult,
    PhaseBreakdown,
    PivotScaleConfig,
    count_cliques,
    count_cliques_all_sizes,
)
from repro.errors import (
    CountingError,
    DatasetError,
    GraphFormatError,
    OrderingError,
    ParallelModelError,
    ReproError,
)
from repro.graph import CSRGraph, from_edge_array, from_edge_list
from repro import obs

__version__ = "1.0.0"

__all__ = [
    "count_cliques",
    "count_cliques_all_sizes",
    "CliqueCountResult",
    "PhaseBreakdown",
    "PivotScaleConfig",
    "CSRGraph",
    "from_edge_array",
    "from_edge_list",
    "obs",
    "ReproError",
    "GraphFormatError",
    "OrderingError",
    "CountingError",
    "ParallelModelError",
    "DatasetError",
    "__version__",
]
