"""Arboricity-based parallel orderings: Barenboim-Elkin and
Goodrich-Pszona.

Arb-Count (the paper's enumeration baseline) implements these two
low-out-degree orientations alongside core and degree orderings, so a
complete comparison suite needs them.  Both are bulk-peeling schemes
like Algorithm 2, differing in the removal rule:

* **Barenboim-Elkin [42]** — each round removes every vertex whose
  current degree is at most ``(2 + eps)`` times the *current
  arboricity estimate* ``|E| / |V|`` (half the average degree);
  guarantees out-degree ``O(arboricity)`` in ``O(log n)`` rounds.
* **Goodrich-Pszona [43]** — each round removes the
  ``ceil(eps / (1 + eps) * |V|)`` *lowest-degree* vertices (a fixed
  fraction), designed for external memory; also ``O(log n)`` rounds
  with out-degree ``O(arboricity)``.

Both reuse the (level, original degree, id) tiebreak of the core
approximation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys

__all__ = ["barenboim_elkin_ordering", "goodrich_pszona_ordering"]


def _bulk_peel(
    g: CSRGraph,
    select_round,
    name: str,
) -> Ordering:
    """Shared round-synchronous peel driver.

    ``select_round(deg, alive, remaining)`` returns the boolean mask of
    vertices to remove this round (must be non-empty for alive sets).
    """
    n = g.num_vertices
    indptr, indices = g.indptr, g.indices
    deg = g.degrees.astype(np.float64).copy()
    alive = np.ones(n, dtype=bool)
    level = np.zeros(n, dtype=np.int64)
    rounds: list[float] = []
    current = 0
    remaining = n
    while remaining > 0:
        select = select_round(deg, alive, remaining)
        if not select.any():
            alive_deg = deg[alive]
            select = alive & (deg == alive_deg.min())
        level[select] = current
        removed = np.flatnonzero(select)
        touched = np.concatenate(
            [indices[indptr[v] : indptr[v + 1]] for v in removed]
        ) if removed.size else np.empty(0, dtype=np.int64)
        if touched.size:
            deg -= np.bincount(touched, minlength=n)
        alive &= ~select
        remaining -= removed.size
        rounds.append(float(remaining + removed.size + touched.size))
        current += 1
        if current > 4 * n + 8:  # pragma: no cover - safety net
            raise OrderingError(f"{name} failed to converge")
    rank = rank_from_keys(level, g.degrees)
    return Ordering(
        name=name,
        rank=rank,
        cost=ParallelCost(rounds=tuple(rounds)),
        levels=level,
    )


def barenboim_elkin_ordering(g: CSRGraph, eps: float = 0.1) -> Ordering:
    """Barenboim-Elkin orientation: peel vertices with degree at most
    ``(2 + eps) x (current |E| / |V|)`` per round."""
    if eps < 0:
        raise OrderingError("eps must be >= 0")

    def select(deg: np.ndarray, alive: np.ndarray, remaining: int):
        # |E|/|V| of the remaining graph = half the average degree.
        arb = deg[alive].sum() / (2.0 * remaining)
        return alive & (deg <= (2.0 + eps) * arb)

    return _bulk_peel(g, select, f"barenboim_elkin(eps={eps:g})")


def goodrich_pszona_ordering(g: CSRGraph, eps: float = 0.5) -> Ordering:
    """Goodrich-Pszona orientation: peel the ``eps / (1 + eps)``
    lowest-degree fraction per round."""
    if eps <= 0:
        raise OrderingError("eps must be > 0")
    frac = eps / (1.0 + eps)

    def select(deg: np.ndarray, alive: np.ndarray, remaining: int):
        take = max(1, int(np.ceil(frac * remaining)))
        alive_idx = np.flatnonzero(alive)
        order = alive_idx[np.argsort(deg[alive_idx], kind="stable")]
        mask = np.zeros(deg.size, dtype=bool)
        mask[order[:take]] = True
        return mask

    return _bulk_peel(g, select, f"goodrich_pszona(eps={eps:g})")
