"""The ordering phase (paper Sec. III).

Every ordering produces a total order ``omega`` over the vertices; the
DAG keeps edge ``u -> v`` iff ``omega(u) < omega(v)``.  Quality is
measured by the DAG's maximum out-degree (lower = less counting work);
the exact core/degeneracy ordering is provably optimal on that metric
but sequential, which is the tension this paper resolves.
"""

from repro.ordering.base import Ordering, ParallelCost, rank_from_keys
from repro.ordering.degree import degree_ordering
from repro.ordering.core import core_ordering, core_numbers
from repro.ordering.approx_core import approx_core_ordering
from repro.ordering.kcore import kcore_ordering
from repro.ordering.centrality import centrality_ordering
from repro.ordering.directionalize import directionalize, max_out_degree
from repro.ordering.arborder import (
    barenboim_elkin_ordering,
    goodrich_pszona_ordering,
)
from repro.ordering.heuristic import (
    HeuristicConfig,
    OrderingChoice,
    select_ordering,
    compute_ordering,
)

__all__ = [
    "Ordering",
    "ParallelCost",
    "rank_from_keys",
    "degree_ordering",
    "core_ordering",
    "core_numbers",
    "approx_core_ordering",
    "kcore_ordering",
    "centrality_ordering",
    "barenboim_elkin_ordering",
    "goodrich_pszona_ordering",
    "directionalize",
    "max_out_degree",
    "HeuristicConfig",
    "OrderingChoice",
    "select_ordering",
    "compute_ordering",
]
