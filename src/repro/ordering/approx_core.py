"""Parallel core-ordering approximation — paper Algorithm 2.

Instead of peeling one minimum-degree vertex at a time, each round
removes *all* vertices whose current degree is below ``(1 + eps) *
delta`` where ``delta`` is the average degree of the remaining graph
(the Besta et al. ADG idea the paper adapts from graph coloring).  Every
vertex removed in the same round shares a level; the total order
tiebreaks by original degree then vertex id (paper Sec. III-A).

``eps`` trades ordering quality for parallelism:

* ``eps = -0.5`` (paper's pick): many rounds (they report 160-6033) but
  a maximum out-degree that matches the exact core ordering,
* ``eps = 0.1`` (Besta et al.'s pick for coloring): 8-15 rounds,
* ``eps`` huge (50 000): one round — every vertex removed immediately —
  which reduces to the degree ordering.

Edge case not covered by the paper's pseudocode: for small enough
``eps`` the threshold can select *no* vertex (e.g. a regular graph needs
``deg < (1 + eps) * deg``, false for ``eps <= 0``).  We then fall back
to removing every vertex of current minimum degree, which keeps the
round count finite and still approximates the exact peel.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys

__all__ = ["approx_core_ordering"]


def approx_core_ordering(g: CSRGraph, eps: float = -0.5) -> Ordering:
    """Compute the Algorithm 2 approximation with parameter ``eps``.

    Returns an :class:`Ordering` whose ``levels`` array holds the
    removal round of each vertex and whose cost profile has one entry
    per round (work = vertices scanned + adjacency entries of removed
    vertices), feeding the Fig. 6 ordering-time model.
    """
    if eps <= -1.0:
        raise OrderingError("eps must be > -1 (threshold must stay positive)")
    n = g.num_vertices
    indptr, indices = g.indptr, g.indices
    deg = g.degrees.astype(np.float64).copy()
    alive = np.ones(n, dtype=bool)
    level = np.zeros(n, dtype=np.int64)
    rounds: list[float] = []
    current = 0
    remaining = n
    while remaining > 0:
        alive_deg = deg[alive]
        delta = alive_deg.sum() / remaining
        threshold = (1.0 + eps) * delta
        select = alive & (deg < threshold)
        if not select.any():
            # Fallback: bulk-remove the minimum-degree class.
            select = alive & (deg == alive_deg.min())
        level[select] = current
        removed = np.flatnonzero(select)
        # Degree updates: every neighbor of a removed vertex loses one.
        # Dead neighbors get decremented too, harmlessly — their degree
        # is never read again.
        touched = np.concatenate(
            [indices[indptr[v] : indptr[v + 1]] for v in removed]
        ) if removed.size else np.empty(0, dtype=np.int64)
        if touched.size:
            deg -= np.bincount(touched, minlength=n)
        alive &= ~select
        remaining -= removed.size
        # Parallel work this round: one threshold test per remaining
        # vertex plus one decrement per touched adjacency entry.
        rounds.append(float(remaining + removed.size + touched.size))
        current += 1
        if current > 4 * n + 8:  # pragma: no cover - safety net
            raise OrderingError("approx core failed to converge")
    rank = rank_from_keys(level, g.degrees)
    return Ordering(
        name=f"approx_core(eps={eps:g})",
        rank=rank,
        cost=ParallelCost(rounds=tuple(rounds)),
        levels=level,
    )
