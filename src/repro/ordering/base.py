"""Shared ordering types.

An :class:`Ordering` couples the total order (a rank permutation) with a
:class:`ParallelCost` describing how the ordering was computed — the
per-round parallel work and any inherently sequential work — which the
machine model (:mod:`repro.parallel`) turns into modeled ordering-phase
times (paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import OrderingError

__all__ = ["ParallelCost", "Ordering", "rank_from_keys"]


@dataclass(frozen=True)
class ParallelCost:
    """Abstract work profile of a phase.

    Attributes
    ----------
    rounds:
        Work units per parallel round; each round is divided across
        threads and followed by a barrier.  An ordering with many small
        rounds (approx core, low eps) scales worse than one big round
        (degree ordering) — exactly the paper's Fig. 6 tension.
    sequential:
        Work units that cannot be parallelized (the exact core
        ordering's peel loop).
    """

    rounds: tuple[float, ...] = ()
    sequential: float = 0.0

    @property
    def total_work(self) -> float:
        """Total work units across rounds plus sequential work."""
        return float(sum(self.rounds)) + self.sequential

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


@dataclass(frozen=True)
class Ordering:
    """A total vertex order produced by an ordering algorithm.

    Attributes
    ----------
    name:
        Algorithm identifier (``"core"``, ``"degree"``,
        ``"approx_core(eps=-0.5)"``, ...).
    rank:
        Permutation array: ``rank[u]`` is u's position in the total
        order.  Directionalization keeps ``u -> v`` iff
        ``rank[u] < rank[v]``.
    cost:
        Work profile for the machine model.
    levels:
        Optional per-vertex coarse level (peel round, core number,
        centrality bucket) before tiebreaking; useful for analysis.
    """

    name: str
    rank: np.ndarray
    cost: ParallelCost = field(default_factory=ParallelCost)
    levels: np.ndarray | None = None

    def __post_init__(self) -> None:
        rank = np.asarray(self.rank, dtype=np.int64)
        object.__setattr__(self, "rank", rank)
        n = rank.size
        if n and (np.sort(rank) != np.arange(n)).any():
            raise OrderingError(f"{self.name}: rank is not a permutation of 0..n-1")
        self.rank.setflags(write=False)
        # Every validated ordering publishes its work profile; the
        # registry replaces the ad-hoc tallies harnesses used to pull
        # out of ParallelCost by hand (no-op while metrics are off).
        obs.record_ordering(self)

    @property
    def num_vertices(self) -> int:
        return int(self.rank.size)

    def order(self) -> np.ndarray:
        """Vertices listed lowest rank first (the peel order)."""
        return np.argsort(self.rank, kind="stable")


def rank_from_keys(*keys: np.ndarray) -> np.ndarray:
    """Build a rank permutation from sort keys, least significant last.

    ``rank_from_keys(primary, tie1, tie2)`` sorts ascending by
    ``primary``, breaking ties by ``tie1`` then ``tie2`` then vertex id
    (ids are appended automatically, guaranteeing a total order).
    """
    if not keys:
        raise OrderingError("at least one sort key required")
    n = keys[0].shape[0]
    for k in keys:
        if k.shape != (n,):
            raise OrderingError("all sort keys must be 1-D of equal length")
    ids = np.arange(n, dtype=np.int64)
    # np.lexsort sorts by the LAST key as primary.
    order = np.lexsort((ids,) + tuple(reversed(keys)))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    return rank
