"""Parallel degree ordering (paper Sec. II-A).

Vertices compare by degree with the identifier as tiebreaker.  Computing
it is a single parallel pass (degrees are already stored in CSR), which
is why it is always the fastest ordering in Fig. 6 — its DAG just has a
higher maximum out-degree than the core ordering's.
"""

from __future__ import annotations

from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys

__all__ = ["degree_ordering"]


def degree_ordering(g: CSRGraph) -> Ordering:
    """Rank vertices ascending by ``(degree, id)``.

    Low-degree vertices come first, so every vertex's out-neighbors have
    degree >= its own: the DAG's maximum out-degree equals the largest
    "degree of a vertex counted among its not-smaller-degree neighbors",
    typically a few times the degeneracy on social networks.
    """
    rank = rank_from_keys(g.degrees)
    # One parallel round: a key-per-vertex scan plus the sort, modeled as
    # O(n) work (the paper's measured degree-ordering times are linear).
    cost = ParallelCost(rounds=(float(g.num_vertices),))
    return Ordering(name="degree", rank=rank, cost=cost, levels=g.degrees.copy())
