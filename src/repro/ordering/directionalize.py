"""Directionalization: undirected graph + total order -> DAG.

Given a rank permutation ``omega``, the DAG keeps edge ``u -> v`` iff
``omega(u) < omega(v)`` (paper Sec. II-A).  Each clique then has exactly
one canonical root — its minimum-rank member — so it is counted once
instead of ``k!`` times.  The DAG's maximum out-degree is the ordering's
quality metric: counting-phase work per vertex is superlinear in it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering

__all__ = ["directionalize", "max_out_degree"]


def directionalize(g: CSRGraph, ordering: Ordering | np.ndarray) -> CSRGraph:
    """Build the DAG induced by ``ordering`` on undirected graph ``g``.

    Adjacency rows stay sorted by vertex id.  The result has exactly
    ``g.num_edges`` directed edges (one orientation per undirected
    edge) and is acyclic by construction.
    """
    if g.directed:
        raise OrderingError("directionalize expects an undirected graph")
    rank = ordering.rank if isinstance(ordering, Ordering) else np.asarray(ordering)
    if rank.shape != (g.num_vertices,):
        raise OrderingError(
            f"rank has shape {rank.shape}, expected ({g.num_vertices},)"
        )
    n = g.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    keep = rank[src] < rank[g.indices]
    new_indices = g.indices[keep]
    counts = np.bincount(src[keep], minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, new_indices, directed=True, validate=False)


def max_out_degree(g: CSRGraph, ordering: Ordering | np.ndarray) -> int:
    """Maximum out-degree the ordering induces — the Fig. 5 quality
    metric — without materializing the DAG."""
    if g.directed:
        raise OrderingError("max_out_degree expects an undirected graph")
    rank = ordering.rank if isinstance(ordering, Ordering) else np.asarray(ordering)
    n = g.num_vertices
    if n == 0:
        return 0
    src = np.repeat(np.arange(n, dtype=np.int64), g.degrees)
    keep = rank[src] < rank[g.indices]
    counts = np.bincount(src[keep], minlength=n)
    return int(counts.max()) if counts.size else 0
