"""Exact core (degeneracy) ordering — Matula-Beck smallest-last peeling.

This is the ordering Pivoter uses: repeatedly remove the minimum-degree
vertex.  It guarantees the minimum possible maximum out-degree (the
degeneracy) after directionalization, but the peel is inherently
sequential (paper Sec. II-A, citing Matula & Beck), which caps the
ordering phase at single-thread speed — the bottleneck PivotScale's
approximation removes.

Implementation: the classic O(n + m) bucket-queue (Batagelj-Zaversnik)
algorithm over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost

__all__ = ["core_ordering", "core_numbers"]


def _peel(g: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Run smallest-last peeling; return (peel_order, core_numbers)."""
    n = g.num_vertices
    deg = g.degrees.copy()
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    md = int(deg.max())
    # Bucket-sorted vertex array: pos[v] is v's slot in `vert`, which is
    # kept partitioned by current degree with bucket starts in `bin_`.
    bin_ = np.zeros(md + 2, dtype=np.int64)
    counts = np.bincount(deg, minlength=md + 1)
    np.cumsum(counts, out=bin_[1:])
    start = bin_[:-1].copy()
    vert = np.empty(n, dtype=np.int64)
    pos = np.empty(n, dtype=np.int64)
    cursor = start.copy()
    for v in range(n):
        d = deg[v]
        vert[cursor[d]] = v
        pos[v] = cursor[d]
        cursor[d] += 1

    indptr, indices = g.indptr, g.indices
    core = np.zeros(n, dtype=np.int64)
    for i in range(n):
        v = vert[i]
        core[v] = deg[v]
        for v_nbr in indices[indptr[v] : indptr[v + 1]]:
            u = int(v_nbr)
            du = deg[u]
            if du > deg[v]:
                # Swap u with the first vertex of its degree bucket, then
                # shrink the bucket boundary: u's degree drops by one.
                pu, pw = pos[u], start[du]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                start[du] += 1
                deg[u] = du - 1
        # Keep later buckets' starts consistent when a bucket empties.
        # (start[] only moves forward; deg[v] entries below i are final.)
    return vert, core


def core_ordering(g: CSRGraph) -> Ordering:
    """Exact degeneracy ordering; rank = peel position.

    The cost profile is entirely sequential: ``n + 2m`` work units (one
    pop per vertex, one degree decrement per directed edge), matching
    the paper's use of a 1-thread core ordering in Table III.
    """
    order, core = _peel(g)
    n = g.num_vertices
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    cost = ParallelCost(sequential=float(n + g.num_directed_edges))
    return Ordering(name="core", rank=rank, cost=cost, levels=core)


def core_numbers(g: CSRGraph) -> np.ndarray:
    """Per-vertex core number (the largest k such that the vertex
    belongs to a k-core); max value is the graph's degeneracy.

    In the Batagelj-Zaversnik peel, a vertex's degree is never
    decremented below the degree of the vertex being removed, so the
    recorded removal degrees are exactly the core numbers.
    """
    _, core = _peel(g)
    return core
