"""Eigenvector-centrality ordering (paper Sec. III-C, novel).

The paper observes that the core ordering effectively ranks vertices by
*importance* — the degrees of their neighbors matter, not just their
own — and proposes ranking by eigenvector centrality computed with just
a few power iterations (3 by default).  Unlike PageRank no per-step
normalization of scores against out-degrees is needed; we rescale by
the maximum purely to avoid float overflow, which preserves the ranks.

Quality lands between core and degree (Fig. 5); it is never the overall
winner but never the loser either (Sec. III-C).
"""

from __future__ import annotations

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys

__all__ = ["centrality_ordering", "eigenvector_scores"]


def eigenvector_scores(g: CSRGraph, iterations: int = 3) -> np.ndarray:
    """Power-iteration eigenvector-centrality scores.

    Each iteration replaces every score with the sum of its neighbors'
    scores (one sparse matrix-vector product), computed via a cumulative
    sum over the CSR adjacency so empty rows are handled exactly.
    """
    if iterations < 1:
        raise OrderingError("iterations must be >= 1")
    n = g.num_vertices
    x = np.ones(n, dtype=np.float64)
    for _ in range(iterations):
        gathered = x[g.indices]
        cs = np.concatenate(([0.0], np.cumsum(gathered)))
        x = cs[g.indptr[1:]] - cs[g.indptr[:-1]]
        peak = x.max() if n else 0.0
        if peak > 0:
            x /= peak
    return x


def centrality_ordering(g: CSRGraph, iterations: int = 3) -> Ordering:
    """Rank vertices ascending by ``(centrality, degree, id)``.

    Low-importance vertices come first so edges point toward important
    vertices — the same direction the core ordering induces.
    """
    scores = eigenvector_scores(g, iterations)
    rank = rank_from_keys(scores, g.degrees)
    # One parallel round per iteration, each touching every adjacency
    # entry once (an SpMV), plus a final O(n) sort round.
    per_round = float(g.num_directed_edges + g.num_vertices)
    cost = ParallelCost(rounds=tuple([per_round] * iterations + [float(g.num_vertices)]))
    return Ordering(name="centrality", rank=rank, cost=cost, levels=None)
