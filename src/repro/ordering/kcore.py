"""Parallel k-core-decomposition ordering (paper Sec. III-B).

A k-core decomposition assigns each vertex its core number.  Parallel
algorithms (ParK, PKC) compute it with level-synchronous peeling: for
``k = 0, 1, 2, ...`` repeatedly remove every remaining vertex of degree
``<= k`` until none remain at that level, then advance ``k``.  The
ordering directs edges from lower to higher core number, tiebreaking by
degree then id — the same tiebreak as the core approximation.

Compared with :func:`repro.ordering.approx_core.approx_core_ordering`
at low ``eps``, this produces *fewer distinct levels* (one per core
number instead of one per round), hence the consistently slightly worse
quality the paper observes in Fig. 5.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.ordering.base import Ordering, ParallelCost, rank_from_keys

__all__ = ["kcore_ordering", "kcore_decomposition"]


def kcore_decomposition(g: CSRGraph) -> tuple[np.ndarray, list[float]]:
    """Level-synchronous (ParK/PKC-style) k-core decomposition.

    Returns ``(core_numbers, round_work)`` where ``round_work`` logs the
    parallel work of every sub-round (scan + degree updates) for the
    ordering-time model.
    """
    n = g.num_vertices
    indptr, indices = g.indptr, g.indices
    deg = g.degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    rounds: list[float] = []
    remaining = n
    k = 0
    while remaining > 0:
        progressed = True
        while progressed:
            frontier = np.flatnonzero(alive & (deg <= k))
            progressed = frontier.size > 0
            if not progressed:
                rounds.append(float(remaining))  # the scan that found nothing
                break
            core[frontier] = k
            alive[frontier] = False
            remaining -= frontier.size
            touched = np.concatenate(
                [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            )
            if touched.size:
                deg -= np.bincount(touched, minlength=n)
            rounds.append(float(remaining + frontier.size + touched.size))
        k += 1
    return core, rounds


def kcore_ordering(g: CSRGraph) -> Ordering:
    """Rank vertices ascending by ``(core number, degree, id)``."""
    core, rounds = kcore_decomposition(g)
    rank = rank_from_keys(core, g.degrees)
    return Ordering(
        name="kcore",
        rank=rank,
        cost=ParallelCost(rounds=tuple(rounds)),
        levels=core,
    )
