"""Order-selecting heuristic (paper Sec. III-E, Table IV).

The degree ordering wins overall when the graph has relatively few
cliques; the core approximation wins when cliques are plentiful.  Large
cliques need their members to have high degrees, and in *assortative*
networks high-degree vertices cluster together — so the heuristic looks
at the highest-degree vertex (the hub):

* ``a`` — the highest degree among the hub's neighbors, normalized to
  ``|V|``.  ``a / |V| >= 0.0015`` signals assortativity and likely
  cliques.
* the common-neighbor fraction between the hub and that neighbor;
  ``>= 0.10`` likewise signals clique richness.
* graph size — below ``|V| = 1M`` ordering time is a large share of the
  total, favoring the cheap degree ordering.

Select the core approximation iff the graph is large enough AND either
signal fires; otherwise degree.  The inputs cost one neighbor-list scan
(Table IV reports ~milliseconds).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.stats import HeuristicInputs, heuristic_inputs
from repro.ordering.approx_core import approx_core_ordering
from repro.ordering.base import Ordering
from repro.ordering.degree import degree_ordering

__all__ = [
    "OrderingChoice",
    "HeuristicConfig",
    "HeuristicDecision",
    "select_ordering",
    "compute_ordering",
]


class OrderingChoice(enum.Enum):
    """The two orderings the heuristic arbitrates between."""

    APPROX_CORE = "approx_core"
    DEGREE = "degree"


@dataclass(frozen=True)
class HeuristicConfig:
    """Thresholds from Sec. III-E, exposed for sensitivity studies.

    ``eps`` is forwarded to the core approximation when selected; the
    paper fixes it at -0.5 for clique counting.
    """

    a_over_v_threshold: float = 0.0015
    common_fraction_threshold: float = 0.10
    min_vertices: float = 1_000_000
    eps: float = -0.5


@dataclass(frozen=True)
class HeuristicDecision:
    """A choice plus the measurements that produced it (Table IV row)."""

    choice: OrderingChoice
    inputs: HeuristicInputs
    large_enough: bool
    a_signal: bool
    common_signal: bool

    @property
    def reason(self) -> str:
        """Human-readable rationale for reports."""
        if not self.large_enough:
            return "graph below size threshold -> degree"
        fired = [
            name
            for name, on in (("a/|V|", self.a_signal), ("common", self.common_signal))
            if on
        ]
        if fired:
            return f"assortativity signals {fired} -> core approximation"
        return "no assortativity signal -> degree"


def select_ordering(
    g: CSRGraph,
    config: HeuristicConfig | None = None,
    *,
    effective_num_vertices: float | None = None,
) -> HeuristicDecision:
    """Evaluate the heuristic on ``g``.

    ``effective_num_vertices`` lets scaled-down dataset analogs be
    judged at paper scale (both for ``a / |V|`` and the size gate); see
    :mod:`repro.datasets`.
    """
    cfg = config or HeuristicConfig()
    inputs = heuristic_inputs(g, effective_num_vertices=effective_num_vertices)
    large = inputs.num_vertices > cfg.min_vertices
    a_signal = inputs.a_over_v >= cfg.a_over_v_threshold
    common_signal = inputs.common_fraction >= cfg.common_fraction_threshold
    choice = (
        OrderingChoice.APPROX_CORE
        if large and (a_signal or common_signal)
        else OrderingChoice.DEGREE
    )
    return HeuristicDecision(
        choice=choice,
        inputs=inputs,
        large_enough=large,
        a_signal=a_signal,
        common_signal=common_signal,
    )


def compute_ordering(
    g: CSRGraph,
    decision: HeuristicDecision | OrderingChoice,
    config: HeuristicConfig | None = None,
) -> Ordering:
    """Materialize the ordering a heuristic decision selected."""
    cfg = config or HeuristicConfig()
    choice = decision.choice if isinstance(decision, HeuristicDecision) else decision
    if choice is OrderingChoice.APPROX_CORE:
        return approx_core_ordering(g, eps=cfg.eps)
    return degree_ordering(g)
