"""NumPy uint64 word-array backend — vectorized intersect/popcount.

Rows live in one preallocated ``(d, words)`` uint64 matrix (``words =
ceil(d / 64)``), reused across roots per the paper's allocation-reuse
discipline (Sec. V-B).  The two fused kernels do the paper's
word-parallel work with single NumPy passes instead of a Python-level
scan:

* ``count_rows`` / ``pivot_select`` — broadcast ``rows & P`` over the
  whole candidate set at once, then popcount every word in one pass —
  the ``np.bitwise_count`` ufunc where available (NumPy >= 2.0), else a
  256-entry byte lookup table (one fancy-index + one reduction);
* ``pivot_select`` *emulates* the scalar scan's early exit: it finds
  the first perfect pivot in ascending local-id order and charges
  ``edge_sum`` only for the rows a scalar scan would have touched, so
  :class:`~repro.counting.counters.Counters` stay backend-invariant.

Masks cross the API boundary as Python big-ints (the recursion's
currency); conversions are single C-level ``int.to_bytes`` /
``int.from_bytes`` calls per kernel invocation.  Word layout is
little-endian, matching ``int.to_bytes(..., "little")``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import BitsetKernel, PivotChoice

__all__ = ["WordArrayKernel"]

#: popcount of every byte value — the byte-LUT fallback popcount.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0: hardware popcount ufunc

    def _popcount_rows(inter: np.ndarray) -> np.ndarray:
        """Per-row popcount of a (m, words) uint64 block."""
        return np.bitwise_count(inter).sum(axis=1, dtype=np.int64)

else:  # pragma: no cover - exercised only on NumPy 1.x

    def _popcount_rows(inter: np.ndarray) -> np.ndarray:
        return _POPCOUNT8[inter.view(np.uint8)].reshape(
            inter.shape[0], -1
        ).sum(axis=1, dtype=np.int64)


class _WordRows:
    """One root's adjacency rows as a (d, words) uint64 matrix view.

    ``ints`` mirrors each row as a Python big-int, filled by
    ``set_row``: single-row kernels (``intersect_count`` dominates the
    recursion's branch loop) then run entirely in CPython big-int
    arithmetic with zero per-call ``tobytes`` conversion, while the
    batch kernels keep vectorizing over ``mat``.
    """

    __slots__ = ("mat", "d", "words", "nbytes_row", "ints")

    def __init__(self, mat: np.ndarray, d: int, words: int) -> None:
        self.mat = mat
        self.d = d
        self.words = words
        self.nbytes_row = words * 8
        self.ints: list[int] = [0] * d


class WordArrayKernel(BitsetKernel):
    """Word-array kernels (the NumPy fast path)."""

    name = "wordarray"

    def __init__(self) -> None:
        self._buf = np.zeros(0, dtype=np.uint64)

    # ------------------------------------------------------------------
    # row storage
    # ------------------------------------------------------------------
    def alloc_rows(self, d: int) -> _WordRows:
        words = max(1, (d + 63) >> 6)
        need = d * words
        if self._buf.size < need:
            self._buf = np.zeros(max(need, 2 * self._buf.size), dtype=np.uint64)
        mat = self._buf[:need].reshape(d, words)
        mat.fill(0)
        return _WordRows(mat, d, words)

    def set_row(self, rows: _WordRows, i: int, bits: np.ndarray) -> None:
        if len(bits) == 0:
            rows.mat[i].fill(0)
            rows.ints[i] = 0
            return
        flags = np.zeros(rows.words * 64, dtype=np.uint8)
        flags[bits] = 1
        packed = np.packbits(flags, bitorder="little")
        rows.mat[i] = packed.view(np.uint64)
        rows.ints[i] = int.from_bytes(packed.tobytes(), "little")

    def row_int(self, rows: _WordRows, i: int) -> int:
        return rows.ints[i]

    def num_rows(self, rows: _WordRows) -> int:
        return rows.d

    # ------------------------------------------------------------------
    # mask conversion helpers
    # ------------------------------------------------------------------
    def _mask_words(self, rows: _WordRows, mask: int) -> np.ndarray:
        return np.frombuffer(
            mask.to_bytes(rows.nbytes_row, "little"), dtype=np.uint64
        )

    @staticmethod
    def _mask_bits(rows: _WordRows, mask: int) -> np.ndarray:
        """Set-bit positions of ``mask``, ascending."""
        return np.flatnonzero(
            np.unpackbits(
                np.frombuffer(
                    mask.to_bytes(rows.nbytes_row, "little"), dtype=np.uint8
                ),
                bitorder="little",
            )
        )

    # ------------------------------------------------------------------
    # fused kernels
    # ------------------------------------------------------------------
    def intersect(self, rows: _WordRows, i: int, mask: int) -> int:
        # Single-row ops: NumPy's per-call overhead (~us) swamps the
        # work on one row, so route through CPython big-int arithmetic
        # over the cached big-int mirror of the row.
        return rows.ints[i] & mask

    def intersect_count(
        self, rows: _WordRows, i: int, mask: int
    ) -> tuple[int, int]:
        r = rows.ints[i] & mask
        return r, r.bit_count()

    def row_accessor(self, rows: _WordRows):
        return rows.ints.__getitem__

    def count_rows(self, rows: _WordRows, mask: int) -> np.ndarray:
        if rows.d == 0:
            return np.zeros(0, dtype=np.int64)
        inter = rows.mat & self._mask_words(rows, mask)
        return _popcount_rows(inter)

    def intersect_count_sweep(
        self, rows: _WordRows, mask: int
    ) -> list[tuple[int, int]]:
        # Batched single pass over the cached big-int rows: the masks
        # must be produced per row regardless, and at realistic row
        # widths a NumPy popcount pass measures *slower* than scalar
        # ``int.bit_count`` (it duplicates the ``&`` over the matrix),
        # so the win comes from dropping the per-row call dispatch of
        # the reference sweep, not from vectorizing.
        return [(r := row & mask, r.bit_count()) for row in rows.ints]

    def pivot_select(self, rows: _WordRows, P: int, pc: int) -> PivotChoice:
        Pw = self._mask_words(rows, P)
        cand = self._mask_bits(rows, P)
        inter = rows.mat[cand] & Pw
        cnts = _popcount_rows(inter)
        # Emulate the scalar scan: stop at the first perfect pivot,
        # first-occurrence tie-break otherwise (np.argmax is exactly
        # that), and charge only the rows a scalar scan would touch.
        perfect = np.flatnonzero(cnts == pc - 1)
        if perfect.size:
            pos = int(perfect[0])
            best_cnt = pc - 1
            edge_sum = int(cnts[: pos + 1].sum())
        else:
            pos = int(np.argmax(cnts))
            best_cnt = int(cnts[pos])
            edge_sum = int(cnts.sum())
        best_row = int.from_bytes(inter[pos].tobytes(), "little")
        return int(cand[pos]), best_row, best_cnt, edge_sum
