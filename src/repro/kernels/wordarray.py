"""NumPy uint64 word-array backend — vectorized intersect/popcount.

Rows live in one preallocated ``(d, words)`` uint64 matrix (``words =
ceil(d / 64)``), reused across roots per the paper's allocation-reuse
discipline (Sec. V-B).  The fused kernels do the paper's word-parallel
work with single NumPy passes instead of a Python-level scan:

* ``count_rows`` / ``pivot_select`` — broadcast ``rows & P`` over the
  whole candidate set at once, then popcount every word in one pass —
  the ``np.bitwise_count`` ufunc where available (NumPy >= 2.0), else a
  256-entry byte lookup table (one fancy-index + one reduction);
* ``pivot_select`` *emulates* the scalar scan's early exit: it finds
  the first perfect pivot in ascending local-id order and charges
  ``edge_sum`` only for the rows a scalar scan would have touched, so
  :class:`~repro.counting.counters.Counters` stay backend-invariant.

Tier 2 — frontier batching.  This backend sets ``frontier = True``:
masks stay *native* ``(words,)`` uint64 arrays across recursive calls
(big-int only at the API boundary), and the batched kernels
(``pivot_select_sweep`` / ``expand_children`` / the frontier form of
``intersect_count_sweep``) process a whole frontier level as one word
tile.  The tile is built in *transposed* ``(F, words, d)`` layout —
``rowsᵀ & masks`` broadcast with the ``d`` axis contiguous innermost —
which measures ~2.4x faster than the naive ``(F, d, words)`` layout on
the dense gate (the broadcast ufunc's inner loop then runs over ``d``
elements per call instead of ``words``).  Small frontiers adaptively
fall back to the scalar big-int scan over the cached ``ints`` mirror,
where CPython big-int arithmetic beats NumPy's fixed per-call overhead.

Masks cross the API boundary as Python big-ints (the recursion's
currency); conversions are single C-level ``int.to_bytes`` /
``int.from_bytes`` calls per kernel invocation.  Word layout is
little-endian, matching ``int.to_bytes(..., "little")``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.base import BitsetKernel, PivotChoice

__all__ = ["WordArrayKernel"]

#: popcount of every byte value — the byte-LUT fallback popcount.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0: hardware popcount ufunc

    def _popcount_words(block: np.ndarray) -> np.ndarray:
        """Per-word popcount (uint8, same shape) of a uint64 block."""
        return np.bitwise_count(block)

else:  # pragma: no cover - exercised only on NumPy 1.x

    def _popcount_words(block: np.ndarray) -> np.ndarray:
        return _POPCOUNT8[block.view(np.uint8)].reshape(
            block.shape + (8,)
        ).sum(axis=-1, dtype=np.uint8)


def _popcount_rows(inter: np.ndarray) -> np.ndarray:
    """Per-row popcount of a (m, words) uint64 block."""
    return _popcount_words(inter).sum(axis=1, dtype=np.int64)


#: Below this total sweep area (``F * d``), the scalar big-int scan
#: over the cached ``ints`` mirror beats the word-tile pipeline's fixed
#: NumPy overhead (measured crossover on 1-core x86).
_SWEEP_SCALAR_AREA = 2048

#: Below this child count, ``expand_children`` runs the scalar big-int
#: branch loop instead of the gather/prefix-or tile path.
_EXPAND_SCALAR_CHILDREN = 24

#: Below this candidate count, single-mask ``pivot_select`` runs the
#: scalar big-int scan: the NumPy path's fixed cost (mask unpack,
#: gather, argmax) only amortizes once the scan touches ~100 rows
#: (measured crossover at word counts 1-4 on 1-core x86).
_PIVOT_SCALAR_PC = 96


class _WordRows:
    """One root's adjacency rows as a (d, words) uint64 matrix view.

    ``ints`` mirrors each row as a Python big-int, filled by
    ``set_row``/``load_rows``: single-row kernels (``intersect_count``
    dominates the scalar branch loop) then run entirely in CPython
    big-int arithmetic with zero per-call ``tobytes`` conversion, while
    the batch kernels keep vectorizing over ``mat``.  ``matT`` lazily
    caches the transposed copy the frontier tile kernels broadcast
    against; it is invalidated by any row mutation.
    """

    __slots__ = ("mat", "d", "words", "nbytes_row", "ints", "_matT")

    def __init__(self, mat: np.ndarray, d: int, words: int) -> None:
        self.mat = mat
        self.d = d
        self.words = words
        self.nbytes_row = words * 8
        self.ints: list[int] = [0] * d
        self._matT: np.ndarray | None = None

    @property
    def matT(self) -> np.ndarray:
        """Contiguous ``(words, d)`` transpose of ``mat`` (cached)."""
        t = self._matT
        if t is None:
            t = self._matT = np.ascontiguousarray(self.mat.T)
        return t


class WordArrayKernel(BitsetKernel):
    """Word-array kernels (the NumPy fast path)."""

    name = "wordarray"
    frontier = True

    def __init__(self) -> None:
        self._buf = np.zeros(0, dtype=np.uint64)

    # ------------------------------------------------------------------
    # row storage
    # ------------------------------------------------------------------
    def alloc_rows(self, d: int) -> _WordRows:
        words = max(1, (d + 63) >> 6)
        need = d * words
        if self._buf.size < need:
            self._buf = np.zeros(max(need, 2 * self._buf.size), dtype=np.uint64)
        mat = self._buf[:need].reshape(d, words)
        mat.fill(0)
        return _WordRows(mat, d, words)

    def set_row(self, rows: _WordRows, i: int, bits: np.ndarray) -> None:
        rows._matT = None
        if len(bits) == 0:
            rows.mat[i].fill(0)
            rows.ints[i] = 0
            return
        flags = np.zeros(rows.words * 64, dtype=np.uint8)
        flags[bits] = 1
        packed = np.packbits(flags, bitorder="little")
        rows.mat[i] = packed.view(np.uint64)
        rows.ints[i] = int.from_bytes(packed.tobytes(), "little")

    def load_rows(
        self, rows: _WordRows, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        # One flat scatter + one packbits for the whole subgraph,
        # replacing d per-row zero/scatter/pack round-trips.
        rows._matT = None
        d, width = rows.d, rows.words * 64
        if d == 0:
            return
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        lens = np.diff(indptr)
        flags = np.zeros(d * width, dtype=np.uint8)
        if indices.size:
            row_of = np.repeat(np.arange(d, dtype=np.int64), lens)
            flags[row_of * width + indices] = 1
        packed = np.packbits(flags.reshape(d, width), axis=1,
                             bitorder="little")
        rows.mat[:] = packed.view(np.uint64)
        nb = rows.nbytes_row
        blob = packed.tobytes()
        rows.ints = [
            int.from_bytes(blob[i * nb:(i + 1) * nb], "little")
            for i in range(d)
        ]

    def row_int(self, rows: _WordRows, i: int) -> int:
        return rows.ints[i]

    def num_rows(self, rows: _WordRows) -> int:
        return rows.d

    # ------------------------------------------------------------------
    # mask conversion helpers (polymorphic: big-int or native words)
    # ------------------------------------------------------------------
    def mask_int(self, rows: _WordRows, mask: Any) -> int:
        if isinstance(mask, int):
            return mask
        return int.from_bytes(mask.tobytes(), "little")

    def to_native(self, rows: _WordRows, mask: Any) -> np.ndarray:
        if isinstance(mask, int):
            return np.frombuffer(
                mask.to_bytes(rows.nbytes_row, "little"), dtype=np.uint64
            )
        return mask

    def _mask_words(self, rows: _WordRows, mask: Any) -> np.ndarray:
        return self.to_native(rows, mask)

    @staticmethod
    def _mask_bits(rows: _WordRows, mask: Any) -> np.ndarray:
        """Set-bit positions of ``mask`` (big-int or native), ascending."""
        if isinstance(mask, int):
            raw = np.frombuffer(
                mask.to_bytes(rows.nbytes_row, "little"), dtype=np.uint8
            )
        else:
            raw = np.ascontiguousarray(mask).view(np.uint8)
        return np.flatnonzero(np.unpackbits(raw, bitorder="little"))

    # ------------------------------------------------------------------
    # fused kernels
    # ------------------------------------------------------------------
    def intersect(self, rows: _WordRows, i: int, mask: Any) -> int:
        # Single-row ops: NumPy's per-call overhead (~us) swamps the
        # work on one row, so route through CPython big-int arithmetic
        # over the cached big-int mirror of the row.
        return rows.ints[i] & self.mask_int(rows, mask)

    def intersect_count(
        self, rows: _WordRows, i: int, mask: Any
    ) -> tuple[int, int]:
        r = rows.ints[i] & self.mask_int(rows, mask)
        return r, r.bit_count()

    def row_accessor(self, rows: _WordRows):
        return rows.ints.__getitem__

    def count_rows(self, rows: _WordRows, mask: Any) -> np.ndarray:
        if rows.d == 0:
            return np.zeros(0, dtype=np.int64)
        inter = rows.mat & self._mask_words(rows, mask)
        return _popcount_rows(inter)

    def intersect_count_sweep(self, rows: _WordRows, mask: Any) -> Any:
        if not isinstance(mask, int) and not (
            isinstance(mask, np.ndarray) and mask.ndim == 1
        ):
            return self._frontier_sweep(rows, mask)
        # Batched single-mask pass over the cached big-int rows: the
        # masks must be produced per row regardless, and at realistic
        # row widths a NumPy popcount pass measures *slower* than
        # scalar ``int.bit_count`` (it duplicates the ``&`` over the
        # matrix), so the win comes from dropping the per-row call
        # dispatch of the reference sweep, not from vectorizing.
        m = self.mask_int(rows, mask)
        return [(r := row & m, r.bit_count()) for row in rows.ints]

    # -- frontier tile machinery ---------------------------------------
    def _tile(
        self, rows: _WordRows, M: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(tileT, counts)`` for a stacked ``(F, words)`` mask block.

        ``tileT[j, w, i] = mat[i, w] & M[j, w]`` (transposed layout,
        ``d`` contiguous innermost); ``counts[j, i] = |row(i) & m_j|``.
        """
        words = rows.words
        tileT = np.bitwise_and(rows.matT[None, :, :], M[:, :, None])
        cnt = _popcount_words(tileT)  # (F, words, d) uint8
        acc_t = np.int16 if words * 64 <= 32767 else np.int64
        counts = cnt[:, 0, :].astype(acc_t)
        for w in range(1, words):
            np.add(counts, cnt[:, w, :], out=counts, casting="unsafe")
        return tileT, counts

    def _frontier_sweep(
        self, rows: _WordRows, masks: Sequence[Any]
    ) -> tuple[np.ndarray, np.ndarray]:
        M = np.stack([self.to_native(rows, m) for m in masks])
        return self._tile(rows, M)

    def sweep_entry(
        self, rows: _WordRows, batch: Any, j: int, i: int
    ) -> tuple[int, int]:
        tileT, counts = batch
        inter = int.from_bytes(
            np.ascontiguousarray(tileT[j, :, i]).tobytes(), "little"
        )
        return inter, int(counts[j, i])

    def pivot_select(self, rows: _WordRows, P: Any, pc: int) -> PivotChoice:
        if pc < _PIVOT_SCALAR_PC:
            # Small scans (the hybrid spine's scalar subtrees live
            # here) stay in CPython big-int arithmetic — NumPy's fixed
            # dispatch overhead dominates below the crossover.
            return self._pivot_scan_int(
                rows.ints, self.mask_int(rows, P), pc
            )
        Pw = self._mask_words(rows, P)
        cand = self._mask_bits(rows, P)
        inter = rows.mat[cand] & Pw
        cnts = _popcount_rows(inter)
        # Emulate the scalar scan: stop at the first perfect pivot,
        # first-occurrence tie-break otherwise (np.argmax is exactly
        # that), and charge only the rows a scalar scan would touch.
        perfect = np.flatnonzero(cnts == pc - 1)
        if perfect.size:
            pos = int(perfect[0])
            best_cnt = pc - 1
            edge_sum = int(cnts[: pos + 1].sum())
        else:
            pos = int(np.argmax(cnts))
            best_cnt = int(cnts[pos])
            edge_sum = int(cnts.sum())
        best_row = int.from_bytes(inter[pos].tobytes(), "little")
        return int(cand[pos]), best_row, best_cnt, edge_sum

    def _pivot_scan_int(self, ints: list[int], P: int, pc: int) -> PivotChoice:
        """The scalar big-int scan over the cached row mirror — the
        small-frontier fast path (CPython beats NumPy dispatch here)."""
        best = -1
        best_cnt = -1
        best_row = 0
        edge_sum = 0
        scan = P
        while scan:
            low = scan & -scan
            r = ints[low.bit_length() - 1] & P
            c = r.bit_count()
            edge_sum += c
            if c > best_cnt:
                best_cnt = c
                best = low.bit_length() - 1
                best_row = r
                if c == pc - 1:
                    break  # perfect pivot: adjacent to all others
            scan ^= low
        return best, best_row, best_cnt, edge_sum

    def pivot_select_sweep(
        self, rows: _WordRows, masks: Sequence[Any], pcs: Sequence[int]
    ) -> tuple[Sequence[int], Sequence[Any], Sequence[int], Sequence[int]]:
        F = len(masks)
        if F == 0:
            return [], [], [], []
        if (
            F * rows.d < _SWEEP_SCALAR_AREA
            or rows.d == 0
            or min(pcs) < 1
        ):
            ints = rows.ints
            out = [
                self._pivot_scan_int(ints, self.mask_int(rows, m), pc)
                for m, pc in zip(masks, pcs)
            ]
            bests, brows, bcnts, edges = zip(*out)
            return list(bests), list(brows), list(bcnts), list(edges)

        d = rows.d
        M = np.stack([self.to_native(rows, m) for m in masks])
        tileT, counts = self._tile(rows, M)
        bitsM = np.unpackbits(
            M.view(np.uint8), axis=1, bitorder="little"
        )[:, :d]
        c0 = counts * bitsM
        pos = np.argmax(c0, axis=1)
        jj = np.arange(F)
        best_cnt = c0[jj, pos]
        zero = best_cnt == 0
        if zero.any():
            # All candidate counts are zero: the scalar scan's "first
            # maximum" is then the first candidate bit, which a plain
            # argmax over the zero matrix would miss.
            pos[zero] = np.argmax(bitsM[zero], axis=1)
        pcs_a = np.asarray(pcs, dtype=np.int64)
        edge = c0.sum(axis=1, dtype=np.int64)
        perfect = np.flatnonzero(best_cnt == pcs_a - 1)
        for j in perfect.tolist():
            # Perfect pivot: the scalar scan stops early — charge only
            # the rows it would have touched (prefix up to the stop).
            edge[j] = int(c0[j, : pos[j] + 1].sum())
        best_rows = tileT[jj, :, pos]  # (F, words), contiguous copies
        return (
            [int(b) for b in pos],
            list(best_rows),
            [int(c) for c in best_cnt],
            [int(e) for e in edge],
        )

    def expand_children(
        self, rows: _WordRows, P: Any, best: int, best_row: Any
    ) -> tuple[list[int], list[Any], list[int]]:
        P0 = self.mask_int(rows, P) & ~(1 << best)
        cand = P0 & ~self.mask_int(rows, best_row)
        m = cand.bit_count()
        if m == 0:
            return [], [], []
        if m < _EXPAND_SCALAR_CHILDREN:
            ints = rows.ints
            ws: list[int] = []
            children: list[Any] = []
            ccs: list[int] = []
            while cand:
                low = cand & -cand
                w = low.bit_length() - 1
                child = ints[w] & P0
                ws.append(w)
                children.append(child)
                ccs.append(child.bit_count())
                P0 ^= low
                cand ^= low
            return ws, children, ccs
        ws_a = self._mask_bits(rows, cand)
        P0w = np.frombuffer(
            P0.to_bytes(rows.nbytes_row, "little"), dtype=np.uint64
        )
        W = rows.mat[ws_a]  # (m, words)
        oh = np.zeros((m, rows.words), dtype=np.uint64)
        oh[np.arange(m), ws_a >> 6] = np.uint64(1) << (
            ws_a.astype(np.uint64) & np.uint64(63)
        )
        # Exclusive prefix-OR of the branch one-hots: child i must drop
        # every earlier branch vertex (the scalar loop's ``P ^= low``).
        excl = np.bitwise_or.accumulate(oh, axis=0) ^ oh
        children_m = W & P0w & ~excl
        ccs_a = _popcount_rows(children_m)
        return (
            [int(w) for w in ws_a],
            list(children_m),
            [int(c) for c in ccs_a],
        )
