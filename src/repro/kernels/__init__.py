"""Swappable bitset kernels for the counting hot path.

Three interchangeable backends implement the word-parallel
intersect-and-count operations at the heart of every engine:

* ``"bigint"`` — Python arbitrary-precision ints as bitsets (the
  reference semantics; the default);
* ``"wordarray"`` — NumPy uint64 word arrays with vectorized ``&`` and
  hardware popcount, fused single-row kernels plus the tier-2 batched
  frontier kernels (``pivot_select_sweep`` / ``expand_children``);
* ``"numba"`` — opt-in nopython JIT compilation of the same frontier
  kernels (the ``[jit]`` extra); when numba is not importable,
  resolving it falls back to ``wordarray`` with a warning.

Select a backend per run via ``PivotScaleConfig(kernel=...)``, the CLI
``--kernel`` flag, the ``REPRO_KERNEL`` environment variable, or any
engine's ``kernel=`` parameter.  The differential suite
(``tests/test_differential.py``) holds the backends to byte-identical
counts and counters; ``benchmarks/bench_kernels.py`` records the
throughput gap.
"""

from __future__ import annotations

import os
import warnings

from repro.errors import CountingError, KernelUnavailableError
from repro.kernels.base import BitsetKernel, PivotChoice
from repro.kernels.bigint import BigIntKernel
from repro.kernels.jit import NumbaKernel, numba_unavailable_reason
from repro.kernels.wordarray import WordArrayKernel

KERNELS: dict[str, type[BitsetKernel]] = {
    "bigint": BigIntKernel,
    "wordarray": WordArrayKernel,
    "numba": NumbaKernel,
}
"""Registry of kernel backends, keyed by CLI/config name.

Every registered name is *valid configuration*; optional backends
(``numba``) may still be unavailable at runtime — see
:func:`kernel_availability` and the fallback in :func:`resolve_kernel`.
"""

DEFAULT_KERNEL = "bigint"

#: Environment override for the default backend (used by the CI
#: ``kernels-numba`` job to re-run whole suites on another backend
#: without touching every call site).
KERNEL_ENV = "REPRO_KERNEL"


def kernel_availability() -> dict[str, str | None]:
    """Per-backend availability: ``None`` when the backend can run,
    else a human-readable reason it cannot."""
    return {
        "bigint": None,
        "wordarray": None,
        "numba": numba_unavailable_reason(),
    }


def available_kernels() -> list[str]:
    """Registered backend names that can actually run here, sorted."""
    return sorted(
        name for name, why in kernel_availability().items() if why is None
    )


def resolve_kernel(kernel: str | BitsetKernel | None = None) -> BitsetKernel:
    """Return a kernel *instance* for a name, instance, or ``None``.

    Backends may hold preallocated scratch buffers, so a fresh instance
    is created per call — do not share one across threads.

    ``None`` resolves to the ``REPRO_KERNEL`` environment variable if
    set, else :data:`DEFAULT_KERNEL`.  An unknown name raises
    :class:`~repro.errors.CountingError` listing the registered
    backends; a *registered but unavailable* optional backend (numba
    without the ``[jit]`` extra) falls back to ``wordarray`` with a
    :class:`RuntimeWarning` naming the reason, so configs written for
    JIT-capable hosts still run everywhere.

    This is also the observability seam: when metrics collection is on
    (:func:`repro.obs.enabled`), the resolved backend is wrapped in a
    call-counting :class:`~repro.obs.InstrumentedKernel`; when it is
    off — the default — the raw backend is returned and the hot path
    pays nothing.
    """
    from repro import obs  # function-local: obs imports kernels.base

    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or DEFAULT_KERNEL
    if isinstance(kernel, BitsetKernel):
        return obs.instrument_kernel(kernel)
    try:
        cls = KERNELS[kernel]
    except KeyError:
        raise CountingError(
            f"unknown kernel {kernel!r}; registered backends: "
            f"{sorted(KERNELS)} (available here: {available_kernels()})"
        ) from None
    try:
        instance = cls()
    except KernelUnavailableError as exc:
        warnings.warn(
            f"{exc} — falling back to 'wordarray'",
            RuntimeWarning,
            stacklevel=2,
        )
        instance = WordArrayKernel()
    return obs.instrument_kernel(instance)


__all__ = [
    "BitsetKernel",
    "PivotChoice",
    "BigIntKernel",
    "WordArrayKernel",
    "NumbaKernel",
    "KERNELS",
    "DEFAULT_KERNEL",
    "KERNEL_ENV",
    "kernel_availability",
    "available_kernels",
    "resolve_kernel",
]
