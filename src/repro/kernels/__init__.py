"""Swappable bitset kernels for the counting hot path.

Two interchangeable backends implement the word-parallel
intersect-and-count operations at the heart of every engine:

* ``"bigint"`` — Python arbitrary-precision ints as bitsets (the
  reference semantics; the default);
* ``"wordarray"`` — NumPy uint64 word arrays with vectorized ``&`` and
  byte-LUT popcount, fused ``intersect_count`` and ``pivot_select``.

Select a backend per run via ``PivotScaleConfig(kernel=...)``, the CLI
``--kernel`` flag, or any engine's ``kernel=`` parameter.  The
differential suite (``tests/test_differential.py``) holds the backends
to byte-identical counts and counters; ``benchmarks/bench_kernels.py``
records the throughput gap.
"""

from __future__ import annotations

from repro.errors import CountingError
from repro.kernels.base import BitsetKernel, PivotChoice
from repro.kernels.bigint import BigIntKernel
from repro.kernels.wordarray import WordArrayKernel

KERNELS: dict[str, type[BitsetKernel]] = {
    "bigint": BigIntKernel,
    "wordarray": WordArrayKernel,
}
"""Registry of kernel backends, keyed by CLI/config name."""

DEFAULT_KERNEL = "bigint"


def resolve_kernel(kernel: str | BitsetKernel | None = None) -> BitsetKernel:
    """Return a kernel *instance* for a name, instance, or ``None``.

    Backends may hold preallocated scratch buffers, so a fresh instance
    is created per call — do not share one across threads.

    This is also the observability seam: when metrics collection is on
    (:func:`repro.obs.enabled`), the resolved backend is wrapped in a
    call-counting :class:`~repro.obs.InstrumentedKernel`; when it is
    off — the default — the raw backend is returned and the hot path
    pays nothing.
    """
    from repro import obs  # function-local: obs imports kernels.base

    if kernel is None:
        kernel = DEFAULT_KERNEL
    if isinstance(kernel, BitsetKernel):
        return obs.instrument_kernel(kernel)
    try:
        return obs.instrument_kernel(KERNELS[kernel]())
    except KeyError:
        raise CountingError(
            f"unknown kernel {kernel!r}; expected one of {sorted(KERNELS)}"
        ) from None


__all__ = [
    "BitsetKernel",
    "PivotChoice",
    "BigIntKernel",
    "WordArrayKernel",
    "KERNELS",
    "DEFAULT_KERNEL",
    "resolve_kernel",
]
