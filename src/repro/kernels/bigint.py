"""The reference backend: Python arbitrary-precision ints as bitsets.

This is the seed implementation's representation, promoted to a
backend: one big-int per adjacency row, ``&`` and ``int.bit_count()``
doing the word-parallel work in CPython's C layer.  It is the semantic
oracle the property suite holds every other backend against, and it
stays the default — zero conversion overhead, and unbeatable for the
many small subgraphs (``d <= 64``) that dominate sparse graphs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.base import BitsetKernel, PivotChoice

__all__ = ["BigIntKernel"]


class BigIntKernel(BitsetKernel):
    """Big-int-mask kernels (the original SCT hot path)."""

    name = "bigint"

    # ------------------------------------------------------------------
    # row storage: a plain list of ints
    # ------------------------------------------------------------------
    def alloc_rows(self, d: int) -> list[int]:
        return [0] * d

    def set_row(self, rows: list[int], i: int, bits: np.ndarray) -> None:
        if len(bits) == 0:
            rows[i] = 0
            return
        d = len(rows)
        flags = np.zeros(d, dtype=np.uint8)
        flags[bits] = 1
        rows[i] = int.from_bytes(
            np.packbits(flags, bitorder="little").tobytes(), "little"
        )

    def row_int(self, rows: list[int], i: int) -> int:
        return rows[i]

    def num_rows(self, rows: list[int]) -> int:
        return len(rows)

    def row_accessor(self, rows: list[int]):
        return rows.__getitem__

    # ------------------------------------------------------------------
    # fused kernels
    # ------------------------------------------------------------------
    def intersect(self, rows: list[int], i: int, mask: int) -> int:
        return rows[i] & mask

    def intersect_count(
        self, rows: list[int], i: int, mask: int
    ) -> tuple[int, int]:
        r = rows[i] & mask
        return r, r.bit_count()

    def count_rows(self, rows: list[int], mask: int) -> Sequence[int]:
        return [(r & mask).bit_count() for r in rows]

    def pivot_select(self, rows: list[int], P: int, pc: int) -> PivotChoice:
        best = -1
        best_cnt = -1
        best_row = 0
        edge_sum = 0
        scan = P
        while scan:
            low = scan & -scan
            r = rows[low.bit_length() - 1] & P
            c = r.bit_count()
            edge_sum += c
            if c > best_cnt:
                best_cnt = c
                best = low.bit_length() - 1
                best_row = r
                if c == pc - 1:
                    break  # perfect pivot: adjacent to all others
            scan ^= low
        return best, best_row, best_cnt, edge_sum
