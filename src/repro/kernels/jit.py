"""Opt-in numba JIT backend — the tier-2 nopython word-tile kernels.

``kernel="numba"`` compiles the fused frontier kernels
(:meth:`pivot_select_sweep`, :meth:`expand_children`, the batched
``intersect_count_sweep``) as nopython loops over the same ``(d,
words)`` uint64 tiles the word-array backend uses — no NumPy temporary
tile, no per-mask interpreter dispatch, and genuine early exit inside
the pivot scan (the word-array backend can only *emulate* the exit in
its work accounting).  Everything else — storage, the big-int mirror,
the scalar single-row ops — is inherited from
:class:`~repro.kernels.wordarray.WordArrayKernel`, so the backend is a
drop-in member of the registry and the differential suite holds it to
the same bit-identical contract.

numba is an *optional* dependency (the ``[jit]`` extra).  When it is
missing, this module still imports cleanly: the ``@_njit`` decorator
degrades to identity, the kernel cores below stay callable as plain
Python (the property suite uses that to check core semantics without a
JIT), and instantiating :class:`NumbaKernel` raises
:class:`~repro.errors.KernelUnavailableError` carrying the original
import failure — :func:`repro.kernels.resolve_kernel` turns that into
a graceful fallback to the word-array backend.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import KernelUnavailableError
from repro.kernels.wordarray import WordArrayKernel, _WordRows

__all__ = ["NumbaKernel", "numba_unavailable_reason"]

try:  # pragma: no cover - depends on the host environment
    from numba import njit as _njit

    _NUMBA_ERROR: str | None = None
except Exception as exc:  # ImportError, or a broken numba install
    _NUMBA_ERROR = f"{type(exc).__name__}: {exc}"

    def _njit(*args, **kwargs):
        """Identity decorator: cores stay plain-Python callable."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


def numba_unavailable_reason() -> str | None:
    """Why the numba backend cannot run here (``None`` when it can)."""
    return _NUMBA_ERROR


if _NUMBA_ERROR is None:  # pragma: no cover - requires numba

    @_njit(cache=True)
    def _popcount64(x: np.uint64) -> np.int64:
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return np.int64((x * np.uint64(0x0101010101010101)) >> np.uint64(56))

else:

    def _popcount64(x) -> int:
        # Pure-Python parity path: exact popcount via CPython.
        return int(x).bit_count()


@_njit(cache=True)
def _pivot_sweep_core(mat, M, pcs):
    """Nopython pivot scan over a stacked mask block.

    ``mat`` is the ``(d, words)`` row tile, ``M`` the ``(F, words)``
    candidate masks, ``pcs`` their popcounts.  Replicates the scalar
    big-int scan exactly: ascending local-id order, first-maximum
    tie-break, genuine early exit at the first perfect pivot, and
    ``edge_sum`` charging only the rows actually scanned.
    """
    F = M.shape[0]
    d = mat.shape[0]
    words = mat.shape[1]
    pos = np.full(F, -1, dtype=np.int64)
    cnts = np.full(F, -1, dtype=np.int64)
    edges = np.zeros(F, dtype=np.int64)
    best_rows = np.zeros((F, words), dtype=np.uint64)
    for j in range(F):
        best = -1
        best_cnt = -1
        edge = 0
        for i in range(d):
            if (M[j, i >> 6] >> np.uint64(i & 63)) & np.uint64(1):
                c = 0
                for w in range(words):
                    c += _popcount64(mat[i, w] & M[j, w])
                edge += c
                if c > best_cnt:
                    best_cnt = c
                    best = i
                    if c == pcs[j] - 1:
                        break  # perfect pivot
        pos[j] = best
        cnts[j] = best_cnt
        edges[j] = edge
        if best >= 0:
            for w in range(words):
                best_rows[j, w] = mat[best, w] & M[j, w]
    return pos, best_rows, cnts, edges


@_njit(cache=True)
def _expand_core(mat, P0, ws):
    """Nopython branch expansion: child masks + popcounts for the
    ascending branch vertices ``ws`` under candidate words ``P0``
    (already excluding the pivot), dropping earlier branch vertices
    exactly like the scalar loop's ``P ^= low``."""
    m = ws.shape[0]
    words = mat.shape[1]
    children = np.zeros((m, words), dtype=np.uint64)
    ccs = np.zeros(m, dtype=np.int64)
    live = P0.copy()
    for t in range(m):
        w = ws[t]
        c = 0
        for q in range(words):
            x = mat[w, q] & live[q]
            children[t, q] = x
            c += _popcount64(x)
        ccs[t] = c
        live[w >> 6] &= ~(np.uint64(1) << np.uint64(w & 63))
    return children, ccs


@_njit(cache=True)
def _sweep_core(mat, M):
    """Nopython frontier intersect/popcount sweep: every mask over
    every row, one pass."""
    F = M.shape[0]
    d = mat.shape[0]
    words = mat.shape[1]
    inter = np.zeros((F, d, words), dtype=np.uint64)
    counts = np.zeros((F, d), dtype=np.int64)
    for j in range(F):
        for i in range(d):
            c = 0
            for w in range(words):
                x = mat[i, w] & M[j, w]
                inter[j, i, w] = x
                c += _popcount64(x)
            counts[j, i] = c
    return inter, counts


class NumbaKernel(WordArrayKernel):
    """numba nopython kernels over the word-array storage layout."""

    name = "numba"
    frontier = True

    def __init__(self) -> None:
        if _NUMBA_ERROR is not None:
            raise KernelUnavailableError("numba", _NUMBA_ERROR)
        super().__init__()

    # ------------------------------------------------------------------
    # frontier kernels — nopython cores
    # ------------------------------------------------------------------
    def pivot_select_sweep(
        self, rows: _WordRows, masks: Sequence[Any], pcs: Sequence[int]
    ) -> tuple[Sequence[int], Sequence[Any], Sequence[int], Sequence[int]]:
        F = len(masks)
        if F == 0 or rows.d == 0 or min(pcs) < 1:
            return WordArrayKernel.pivot_select_sweep(self, rows, masks, pcs)
        M = np.stack([self.to_native(rows, m) for m in masks])
        pcs_a = np.asarray(pcs, dtype=np.int64)
        pos, best_rows, cnts, edges = _pivot_sweep_core(rows.mat, M, pcs_a)
        return (
            [int(b) for b in pos],
            list(best_rows),
            [int(c) for c in cnts],
            [int(e) for e in edges],
        )

    def expand_children(
        self, rows: _WordRows, P: Any, best: int, best_row: Any
    ) -> tuple[list[int], list[Any], list[int]]:
        P0 = self.mask_int(rows, P) & ~(1 << best)
        cand = P0 & ~self.mask_int(rows, best_row)
        if cand == 0:
            return [], [], []
        ws_a = self._mask_bits(rows, cand)
        P0w = np.frombuffer(
            P0.to_bytes(rows.nbytes_row, "little"), dtype=np.uint64
        ).copy()
        children, ccs = _expand_core(rows.mat, P0w, ws_a)
        return (
            [int(w) for w in ws_a],
            list(children),
            [int(c) for c in ccs],
        )

    def _frontier_sweep(
        self, rows: _WordRows, masks: Sequence[Any]
    ) -> tuple[np.ndarray, np.ndarray]:
        M = np.stack([self.to_native(rows, m) for m in masks])
        return _sweep_core(rows.mat, M)

    def sweep_entry(
        self, rows: _WordRows, batch: Any, j: int, i: int
    ) -> tuple[int, int]:
        inter, counts = batch
        return (
            int.from_bytes(inter[j, i].tobytes(), "little"),
            int(counts[j, i]),
        )
