"""The bitset-kernel contract — the hot-path seam of the counting phase.

Every counting engine (SCT, enumeration, per-vertex / per-edge
attribution) spends essentially all of its time doing two things inside
the pivot recursion: intersecting an adjacency row with the candidate
set, and popcounting the result ("The Power of Pivoting" and Arb-Count
both report the intersect-and-count kernel as the dominant cost).  This
module makes that kernel a first-class, swappable layer:

* a **backend** owns the storage of one root's local adjacency rows and
  implements the word-parallel operations over them;
* the recursion keeps its control flow — and its *masks* — as exact
  Python big-ints, so counts are trivially identical across backends;
* every fused kernel reproduces the scalar big-int scan semantics
  bit-for-bit (same tie-breaks, same early exits, same per-row work
  totals), so the instrumentation :class:`~repro.counting.counters.Counters`
  are backend-invariant by construction — the performance model never
  sees which backend ran.

Backends registered in :mod:`repro.kernels` (``bigint`` — the original
Python big-int masks — and ``wordarray`` — NumPy uint64 word arrays)
are selected per engine via :class:`repro.core.config.PivotScaleConfig`
or the CLI's ``--kernel`` flag.  Later backends (multiprocessing,
Cython, GPU) plug into the same seam.

Mask convention
---------------
At the API boundary a *mask* is always an arbitrary-precision Python
int used as a bitset over local vertex ids ``[0, d)``; *rows* is an
opaque backend-owned handle to the ``d`` adjacency rows of one root's
induced subgraph.  A handle is only valid until the backend's next
``alloc_rows`` call (backends may reuse preallocated buffers — the
paper's Sec. V-B allocation-reuse discipline).

Tier 2: frontier batching
-------------------------
Backends that set :attr:`BitsetKernel.frontier` additionally accept
*native* masks — an opaque backend-owned representation (the word-array
backend uses ``(words,)`` uint64 arrays) that stays native across
recursive calls, converting to big-int only at the API boundary via
:meth:`BitsetKernel.mask_int`.  The frontier kernels
(:meth:`pivot_select_sweep`, :meth:`expand_children`, the batched form
of :meth:`intersect_count_sweep`) then process a whole frontier level
of the pivot recursion as single NumPy matrix ops over the uint64 word
tiles instead of one interpreter round-trip per node — the
binary-adjacency tiling trick of the GPU clique counters.  Every
frontier kernel replicates the scalar big-int scan semantics
bit-for-bit (tie-breaks, perfect-pivot early-exit accounting), so
counts *and* the per-root work counters stay backend-invariant even
though the call totals change shape.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

__all__ = ["BitsetKernel", "PivotChoice"]

#: ``pivot_select`` result: ``(best, best_row, best_cnt, edge_sum)``.
#: ``best`` is the chosen pivot's local id, ``best_row`` the big-int
#: mask of ``N(best) ∩ P``, ``best_cnt`` its popcount, and ``edge_sum``
#: the total popcount of every row actually scanned — the engine's
#: edge-granular work charge.
PivotChoice = tuple[int, int, int, int]


class BitsetKernel(abc.ABC):
    """One intersect-and-count backend.

    Instances may hold mutable scratch state (preallocated buffers), so
    each structure/engine gets its own instance via
    :func:`repro.kernels.resolve_kernel` — never share one across
    threads.
    """

    #: registry name ("bigint" / "wordarray" / "numba")
    name: str = "base"

    #: ``True`` when the backend supports native masks and the batched
    #: frontier kernels (:meth:`pivot_select_sweep` /
    #: :meth:`expand_children` operating on whole frontier levels).
    #: Engines use this to pick the frontier recursion spine; scalar
    #: backends keep the per-node big-int path.
    frontier: bool = False

    # ------------------------------------------------------------------
    # row storage
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def alloc_rows(self, d: int) -> Any:
        """Fresh (or reused) storage for ``d`` all-zero rows."""

    @abc.abstractmethod
    def set_row(self, rows: Any, i: int, bits: np.ndarray) -> None:
        """Set row ``i`` to the bitset with ``bits`` (ascending local
        ids, possibly empty) set."""

    def load_rows(
        self, rows: Any, indptr: np.ndarray, indices: np.ndarray
    ) -> None:
        """Bulk-load every row from CSR-shaped local ids.

        ``indices[indptr[i]:indptr[i + 1]]`` holds row ``i``'s set bits
        (ascending local ids).  The default loops :meth:`set_row`, so
        scalar backends keep working; vectorizing backends override to
        scatter the whole subgraph in one pass — this replaces the
        per-row Python loop during root setup, a measurable fixed cost
        on high-degree roots.
        """
        for i in range(self.num_rows(rows)):
            self.set_row(rows, i, indices[indptr[i]:indptr[i + 1]])

    @abc.abstractmethod
    def row_int(self, rows: Any, i: int) -> int:
        """Row ``i`` as a big-int mask (the compat / slow-path view)."""

    @abc.abstractmethod
    def num_rows(self, rows: Any) -> int:
        """``d`` of this handle."""

    # ------------------------------------------------------------------
    # fused kernels — big-int masks in, big-int masks out
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def intersect(self, rows: Any, i: int, mask: int) -> int:
        """``row(i) & mask``."""

    @abc.abstractmethod
    def intersect_count(self, rows: Any, i: int, mask: int) -> tuple[int, int]:
        """``(row(i) & mask, popcount)`` — the inner-loop kernel, fused
        so backends never materialize an intermediate they'd re-scan."""

    @abc.abstractmethod
    def count_rows(self, rows: Any, mask: int) -> Sequence[int]:
        """``|row(i) & mask|`` for every ``i`` — the batch
        intersect/popcount kernel the microbenchmarks time."""

    def intersect_count_sweep(self, rows: Any, mask: Any) -> Any:
        """``(row(i) & mask, popcount)`` for every row — the batched
        form of :meth:`intersect_count`.

        Polymorphic over ``mask``:

        * a single big-int mask returns ``[(inter, count), ...]`` per
          row (the tier-1 form — backends override when they can
          amortize per-call overhead across the sweep);
        * a *sequence* of masks (the tier-2 frontier form) sweeps every
          mask over every row and returns a backend-opaque batch; read
          entries portably with :meth:`sweep_entry`.  Frontier backends
          run the whole ``(F, d)`` sweep as one word-tile matrix op.
        """
        if not isinstance(mask, int):
            return [self.intersect_count_sweep(rows, self.mask_int(rows, m))
                    for m in mask]
        return [
            self.intersect_count(rows, i, mask)
            for i in range(self.num_rows(rows))
        ]

    def sweep_entry(self, rows: Any, batch: Any, j: int, i: int
                    ) -> tuple[int, int]:
        """Entry ``(mask j, row i)`` of a frontier
        :meth:`intersect_count_sweep` batch, as ``(big-int intersection,
        popcount)`` — the portable accessor the property suite uses to
        compare backends."""
        inter, cnt = batch[j][i]
        return inter, cnt

    @abc.abstractmethod
    def pivot_select(self, rows: Any, P: int, pc: int) -> PivotChoice:
        """Choose the pivot maximizing ``|row(i) ∩ P|`` over ``i ∈ P``.

        Must replicate the scalar scan exactly (``pc`` is ``P``'s
        popcount, passed in because every caller already has it):

        * candidates are scanned in ascending local-id order;
        * ties keep the *first* maximum;
        * the scan stops at the first *perfect* pivot
          (``count == pc - 1``, adjacent to every other candidate);
        * ``edge_sum`` charges the popcount of each row scanned up to
          and including the stopping point — identical work accounting
          whether the backend actually short-circuits or vectorizes.
        """

    # ------------------------------------------------------------------
    # tier-2 frontier kernels — native masks in, native masks out
    # ------------------------------------------------------------------
    def mask_int(self, rows: Any, mask: Any) -> int:
        """A mask (native or big-int) as a big-int — the API-boundary
        conversion.  Identity for scalar backends."""
        return mask

    def to_native(self, rows: Any, mask: int) -> Any:
        """A big-int mask in the backend's native representation.
        Identity for scalar backends (their native masks *are* ints)."""
        return mask

    def pivot_select_sweep(
        self, rows: Any, masks: Sequence[Any], pcs: Sequence[int]
    ) -> tuple[Sequence[int], Sequence[Any], Sequence[int], Sequence[int]]:
        """:meth:`pivot_select` over a whole frontier of candidate
        masks at once.

        ``masks[j]`` (native or big-int, popcount ``pcs[j] >= 1``)
        yields entry ``j`` of four parallel sequences ``(bests,
        best_rows, best_cnts, edge_sums)``; ``best_rows[j]`` is native.
        The default loops the scalar kernel; frontier backends run the
        whole sweep as one ``(F, words, d)`` word-tile op while
        emulating the scalar scan's perfect-pivot early-exit accounting
        per mask.
        """
        bests: list[int] = []
        rows_out: list[Any] = []
        cnts: list[int] = []
        edges: list[int] = []
        for m, pc in zip(masks, pcs):
            b, br, bc, es = self.pivot_select(rows, self.mask_int(rows, m), pc)
            bests.append(b)
            rows_out.append(br)
            cnts.append(bc)
            edges.append(es)
        return bests, rows_out, cnts, edges

    def expand_children(
        self, rows: Any, P: Any, best: int, best_row: Any
    ) -> tuple[list[int], list[Any], list[int]]:
        """Expand one pivot node's branch children in one call.

        Given candidate mask ``P`` and the chosen pivot ``best`` with
        intersection ``best_row`` (both masks native or big-int),
        returns ``(ws, children, ccs)``: the branch vertices
        ``ws = P \\ ({best} ∪ best_row)`` in ascending local-id order,
        and for each the native child mask ``row(w_i) ∩ P ∩
        ~{best, w_0..w_{i-1}}`` with its popcount — exactly the masks
        the scalar branch loop produces one :meth:`intersect_count` at
        a time.
        """
        P0 = self.mask_int(rows, P) & ~(1 << best)
        cand = P0 & ~self.mask_int(rows, best_row)
        ws: list[int] = []
        children: list[Any] = []
        ccs: list[int] = []
        while cand:
            low = cand & -cand
            w = low.bit_length() - 1
            child, cc = self.intersect_count(rows, w, P0)
            ws.append(w)
            children.append(child)
            ccs.append(cc)
            P0 ^= low
            cand ^= low
        return ws, children, ccs

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def row_accessor(self, rows: Any):
        """Fast ``local id -> big-int row`` callable over ``rows``
        (backends override when a tighter binding exists)."""
        def row(i: int, _rows=rows, _k=self) -> int:
            return _k.row_int(_rows, i)

        return row

    def rows_from_ints(self, masks: Sequence[int], d: int) -> Any:
        """Build a handle from big-int rows (tests / adapters)."""
        rows = self.alloc_rows(d)
        for i, m in enumerate(masks):
            if m:
                bits = np.flatnonzero(
                    np.frombuffer(
                        np.unpackbits(
                            np.frombuffer(
                                m.to_bytes((d + 7) >> 3, "little"), dtype=np.uint8
                            ),
                            bitorder="little",
                        ).tobytes(),
                        dtype=np.uint8,
                    )
                )
                self.set_row(rows, i, bits[bits < d])
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
