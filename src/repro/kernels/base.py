"""The bitset-kernel contract — the hot-path seam of the counting phase.

Every counting engine (SCT, enumeration, per-vertex / per-edge
attribution) spends essentially all of its time doing two things inside
the pivot recursion: intersecting an adjacency row with the candidate
set, and popcounting the result ("The Power of Pivoting" and Arb-Count
both report the intersect-and-count kernel as the dominant cost).  This
module makes that kernel a first-class, swappable layer:

* a **backend** owns the storage of one root's local adjacency rows and
  implements the word-parallel operations over them;
* the recursion keeps its control flow — and its *masks* — as exact
  Python big-ints, so counts are trivially identical across backends;
* every fused kernel reproduces the scalar big-int scan semantics
  bit-for-bit (same tie-breaks, same early exits, same per-row work
  totals), so the instrumentation :class:`~repro.counting.counters.Counters`
  are backend-invariant by construction — the performance model never
  sees which backend ran.

Backends registered in :mod:`repro.kernels` (``bigint`` — the original
Python big-int masks — and ``wordarray`` — NumPy uint64 word arrays)
are selected per engine via :class:`repro.core.config.PivotScaleConfig`
or the CLI's ``--kernel`` flag.  Later backends (multiprocessing,
Cython, GPU) plug into the same seam.

Mask convention
---------------
At the API boundary a *mask* is always an arbitrary-precision Python
int used as a bitset over local vertex ids ``[0, d)``; *rows* is an
opaque backend-owned handle to the ``d`` adjacency rows of one root's
induced subgraph.  A handle is only valid until the backend's next
``alloc_rows`` call (backends may reuse preallocated buffers — the
paper's Sec. V-B allocation-reuse discipline).
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

__all__ = ["BitsetKernel", "PivotChoice"]

#: ``pivot_select`` result: ``(best, best_row, best_cnt, edge_sum)``.
#: ``best`` is the chosen pivot's local id, ``best_row`` the big-int
#: mask of ``N(best) ∩ P``, ``best_cnt`` its popcount, and ``edge_sum``
#: the total popcount of every row actually scanned — the engine's
#: edge-granular work charge.
PivotChoice = tuple[int, int, int, int]


class BitsetKernel(abc.ABC):
    """One intersect-and-count backend.

    Instances may hold mutable scratch state (preallocated buffers), so
    each structure/engine gets its own instance via
    :func:`repro.kernels.resolve_kernel` — never share one across
    threads.
    """

    #: registry name ("bigint" / "wordarray")
    name: str = "base"

    # ------------------------------------------------------------------
    # row storage
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def alloc_rows(self, d: int) -> Any:
        """Fresh (or reused) storage for ``d`` all-zero rows."""

    @abc.abstractmethod
    def set_row(self, rows: Any, i: int, bits: np.ndarray) -> None:
        """Set row ``i`` to the bitset with ``bits`` (ascending local
        ids, possibly empty) set."""

    @abc.abstractmethod
    def row_int(self, rows: Any, i: int) -> int:
        """Row ``i`` as a big-int mask (the compat / slow-path view)."""

    @abc.abstractmethod
    def num_rows(self, rows: Any) -> int:
        """``d`` of this handle."""

    # ------------------------------------------------------------------
    # fused kernels — big-int masks in, big-int masks out
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def intersect(self, rows: Any, i: int, mask: int) -> int:
        """``row(i) & mask``."""

    @abc.abstractmethod
    def intersect_count(self, rows: Any, i: int, mask: int) -> tuple[int, int]:
        """``(row(i) & mask, popcount)`` — the inner-loop kernel, fused
        so backends never materialize an intermediate they'd re-scan."""

    @abc.abstractmethod
    def count_rows(self, rows: Any, mask: int) -> Sequence[int]:
        """``|row(i) & mask|`` for every ``i`` — the batch
        intersect/popcount kernel the microbenchmarks time."""

    def intersect_count_sweep(
        self, rows: Any, mask: int
    ) -> list[tuple[int, int]]:
        """``(row(i) & mask, popcount)`` for every row — the batched
        form of :meth:`intersect_count`.  Backends override when they
        can amortize per-call overhead across the whole sweep (the
        word-array backend popcounts all rows in one vector pass)."""
        return [
            self.intersect_count(rows, i, mask)
            for i in range(self.num_rows(rows))
        ]

    @abc.abstractmethod
    def pivot_select(self, rows: Any, P: int, pc: int) -> PivotChoice:
        """Choose the pivot maximizing ``|row(i) ∩ P|`` over ``i ∈ P``.

        Must replicate the scalar scan exactly (``pc`` is ``P``'s
        popcount, passed in because every caller already has it):

        * candidates are scanned in ascending local-id order;
        * ties keep the *first* maximum;
        * the scan stops at the first *perfect* pivot
          (``count == pc - 1``, adjacent to every other candidate);
        * ``edge_sum`` charges the popcount of each row scanned up to
          and including the stopping point — identical work accounting
          whether the backend actually short-circuits or vectorizes.
        """

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def row_accessor(self, rows: Any):
        """Fast ``local id -> big-int row`` callable over ``rows``
        (backends override when a tighter binding exists)."""
        def row(i: int, _rows=rows, _k=self) -> int:
            return _k.row_int(_rows, i)

        return row

    def rows_from_ints(self, masks: Sequence[int], d: int) -> Any:
        """Build a handle from big-int rows (tests / adapters)."""
        rows = self.alloc_rows(d)
        for i, m in enumerate(masks):
            if m:
                bits = np.flatnonzero(
                    np.frombuffer(
                        np.unpackbits(
                            np.frombuffer(
                                m.to_bytes((d + 7) >> 3, "little"), dtype=np.uint8
                            ),
                            bitorder="little",
                        ).tobytes(),
                        dtype=np.uint8,
                    )
                )
                self.set_row(rows, i, bits[bits < d])
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"
