# Convenience targets for the PivotScale reproduction.

.PHONY: install test test-fast bench bench-record bench-compare report \
        figures examples clean

install:
	pip install -e '.[test]'

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

bench:
	pytest benchmarks/ --benchmark-only

# Record the gated smoke benches into the run store, then gate them
# statistically against the promoted baselines (docs/benchmarking.md).
bench-record:
	python -m repro bench run all --smoke --repeat 3

bench-compare:
	python -m repro bench compare --strict

report:
	python -m repro report

figures:
	python -m repro figures

examples:
	python examples/quickstart.py
	python examples/social_network_analysis.py
	python examples/ordering_explorer.py skitter
	python examples/scaling_study.py webedu 8
	python examples/community_detection.py
	python examples/approximate_counting.py
	python examples/livejournal_challenge.py

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks build dist
	find . -name __pycache__ -type d -exec rm -rf {} +
